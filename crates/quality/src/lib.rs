//! # imprecise-quality — answer-quality measures for uncertain answers
//!
//! §VII of the IMPrECISE paper: *"We demonstrate querying on integrated
//! documents and measure answer quality with adapted precision and recall
//! measures"* (the measures of de Keijzer & van Keulen, SUM 2007 — the
//! paper's reference \[13\]).
//!
//! Classical precision/recall assume a crisp answer set. A probabilistic
//! answer assigns each value a probability, so the adapted measures weight
//! membership by probability:
//!
//! * **probabilistic precision** — of the probability mass the system
//!   put on answers, the fraction placed on correct ones:
//!   `Σ_{a∈A∩T} p(a) / Σ_{a∈A} p(a)`;
//! * **probabilistic recall** — how much of the truth the system covers,
//!   with partial credit for uncertain answers:
//!   `Σ_{a∈A∩T} p(a) / |T|`;
//! * the harmonic **F-measure** of the two.
//!
//! Thresholded (crisp) variants are also provided: treat `p ≥ τ` as "in
//! the answer" and measure classically — useful for precision/recall
//! curves over τ.

use imprecise_query::RankedAnswers;
use std::collections::BTreeSet;

/// A quality report for one query against a ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Probability-weighted precision.
    pub precision: f64,
    /// Probability-weighted recall.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f_measure: f64,
    /// Expected size of the answer set (`Σ p(a)`).
    pub expected_answer_size: f64,
    /// Number of distinct answer values reported.
    pub reported: usize,
    /// Size of the ground truth.
    pub truth_size: usize,
}

/// Compute the probabilistic quality measures of `answers` against the
/// ground-truth value set `truth`.
pub fn evaluate(answers: &RankedAnswers, truth: &[&str]) -> QualityReport {
    let truth_set: BTreeSet<&str> = truth.iter().copied().collect();
    let mass_total: f64 = answers.items.iter().map(|a| a.probability).sum();
    let mass_correct: f64 = answers
        .items
        .iter()
        .filter(|a| truth_set.contains(a.value.as_str()))
        .map(|a| a.probability)
        .sum();
    let precision = if mass_total > 0.0 {
        mass_correct / mass_total
    } else if truth_set.is_empty() {
        1.0 // empty answer against empty truth is perfect
    } else {
        0.0
    };
    let recall = if truth_set.is_empty() {
        1.0
    } else {
        mass_correct / truth_set.len() as f64
    };
    let f_measure = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    QualityReport {
        precision,
        recall,
        f_measure,
        expected_answer_size: mass_total,
        reported: answers.len(),
        truth_size: truth_set.len(),
    }
}

/// Classical precision/recall after thresholding: values with
/// `p ≥ threshold` form a crisp answer set.
pub fn evaluate_at_threshold(
    answers: &RankedAnswers,
    truth: &[&str],
    threshold: f64,
) -> QualityReport {
    let truth_set: BTreeSet<&str> = truth.iter().copied().collect();
    let selected: Vec<&str> = answers
        .at_least(threshold)
        .map(|a| a.value.as_str())
        .collect();
    let correct = selected.iter().filter(|v| truth_set.contains(*v)).count() as f64;
    let precision = if selected.is_empty() {
        if truth_set.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        correct / selected.len() as f64
    };
    let recall = if truth_set.is_empty() {
        1.0
    } else {
        correct / truth_set.len() as f64
    };
    let f_measure = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    QualityReport {
        precision,
        recall,
        f_measure,
        expected_answer_size: selected.len() as f64,
        reported: selected.len(),
        truth_size: truth_set.len(),
    }
}

/// Sweep the threshold over every distinct answer probability, producing
/// `(threshold, report)` rows for a precision/recall curve.
pub fn threshold_curve(answers: &RankedAnswers, truth: &[&str]) -> Vec<(f64, QualityReport)> {
    let mut thresholds: Vec<f64> = answers.items.iter().map(|a| a.probability).collect();
    // lint:allow(expect-in-lib, holds by construction: finite)
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    thresholds.dedup();
    thresholds
        .into_iter()
        .map(|t| (t, evaluate_at_threshold(answers, truth, t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answers(pairs: &[(&str, f64)]) -> RankedAnswers {
        RankedAnswers::from_pairs(pairs.iter().map(|(v, p)| ((*v).to_string(), *p)).collect())
    }

    #[test]
    fn perfect_answer_scores_one() {
        let a = answers(&[("Jaws", 1.0), ("Jaws 2", 1.0)]);
        let r = evaluate(&a, &["Jaws", "Jaws 2"]);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f_measure, 1.0);
    }

    #[test]
    fn paper_horror_example_quality() {
        // The paper's Horror query: both truths at 97%, nothing wrong.
        let a = answers(&[("Jaws", 0.97), ("Jaws 2", 0.97)]);
        let r = evaluate(&a, &["Jaws", "Jaws 2"]);
        assert_eq!(r.precision, 1.0); // all mass on correct answers
        assert!((r.recall - 0.97).abs() < 1e-12);
        assert!(r.f_measure > 0.98);
    }

    #[test]
    fn paper_john_example_quality() {
        // 100% + 96% correct, 21% incorrect.
        let a = answers(&[
            ("Die Hard: With a Vengeance", 1.0),
            ("Mission: Impossible II", 0.96),
            ("Mission: Impossible", 0.21),
        ]);
        let r = evaluate(
            &a,
            &["Die Hard: With a Vengeance", "Mission: Impossible II"],
        );
        assert!((r.precision - 1.96 / 2.17).abs() < 1e-12);
        assert!((r.recall - 0.98).abs() < 1e-12);
        assert_eq!(r.reported, 3);
        assert_eq!(r.truth_size, 2);
    }

    #[test]
    fn wrong_answers_hurt_precision_not_recall() {
        let a = answers(&[("right", 0.9), ("wrong", 0.9)]);
        let r = evaluate(&a, &["right"]);
        assert!((r.precision - 0.5).abs() < 1e-12);
        assert!((r.recall - 0.9).abs() < 1e-12);
    }

    #[test]
    fn missing_answers_hurt_recall() {
        let a = answers(&[("right", 1.0)]);
        let r = evaluate(&a, &["right", "also-right"]);
        assert_eq!(r.precision, 1.0);
        assert!((r.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let none = answers(&[]);
        let r = evaluate(&none, &[]);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        let r = evaluate(&none, &["missing"]);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f_measure, 0.0);
    }

    #[test]
    fn thresholding_drops_low_probability_noise() {
        let a = answers(&[("right", 0.96), ("noise", 0.21)]);
        let crisp = evaluate_at_threshold(&a, &["right"], 0.5);
        assert_eq!(crisp.precision, 1.0);
        assert_eq!(crisp.recall, 1.0);
        let loose = evaluate_at_threshold(&a, &["right"], 0.1);
        assert!((loose.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_curve_is_complete_and_monotone_in_size() {
        let a = answers(&[("x", 0.9), ("y", 0.5), ("z", 0.2)]);
        let curve = threshold_curve(&a, &["x", "y"]);
        assert_eq!(curve.len(), 3);
        // Higher thresholds never include more answers.
        for pair in curve.windows(2) {
            assert!(pair[0].1.reported >= pair[1].1.reported);
        }
    }

    #[test]
    fn expected_answer_size() {
        let a = answers(&[("x", 0.9), ("y", 0.5)]);
        let r = evaluate(&a, &["x"]);
        assert!((r.expected_answer_size - 1.4).abs() < 1e-12);
    }
}
