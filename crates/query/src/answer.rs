//! Amalgamated, likelihood-ranked answers.

use std::collections::HashMap;
use std::fmt;

/// One ranked answer value.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnswer {
    /// The answer's string value (e.g. a movie title).
    pub value: String,
    /// Exact probability that this value occurs in the query answer.
    pub probability: f64,
}

/// The amalgamated answer: distinct values ranked by likelihood.
///
/// This is the paper's "sequence of possible result elements ranked by
/// likelihood" — e.g. `97% Jaws`, `97% Jaws 2` for the Horror query.
#[derive(Debug, Clone, Default)]
pub struct RankedAnswers {
    /// Answers sorted by descending probability. Equal-probability
    /// answers keep the order the evaluator produced them in — document
    /// order of their first occurrence — so ties break deterministically
    /// by position in the document, not alphabetically.
    ///
    /// Treat as read-only: the constructors maintain an internal lookup
    /// index over these items.
    pub items: Vec<RankedAnswer>,
    /// value → position in `items`, kept in sync by the constructors so
    /// [`probability_of`](Self::probability_of) is O(1).
    index: HashMap<String, usize>,
}

impl PartialEq for RankedAnswers {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
    }
}

impl RankedAnswers {
    /// Build from `(value, probability)` pairs given in document order
    /// (order of first occurrence). The sort is stable, so
    /// equal-probability answers stay in document order.
    pub fn from_pairs(pairs: Vec<(String, f64)>) -> Self {
        let mut items: Vec<RankedAnswer> = pairs
            .into_iter()
            .map(|(value, probability)| RankedAnswer { value, probability })
            .collect();
        items.sort_by(|a, b| b.probability.total_cmp(&a.probability));
        // First occurrence wins: should a caller hand in duplicate
        // values, lookups answer with the highest-ranked one (matching
        // the pre-index linear-scan behaviour).
        let mut index = HashMap::with_capacity(items.len());
        for (i, a) in items.iter().enumerate() {
            index.entry(a.value.clone()).or_insert(i);
        }
        RankedAnswers { items, index }
    }

    /// The probability of a specific value (0 when absent). O(1).
    pub fn probability_of(&self, value: &str) -> f64 {
        self.index
            .get(value)
            .map_or(0.0, |&i| self.items[i].probability)
    }

    /// The rank (0-based position) of a value, or `None` when absent.
    /// O(1).
    pub fn rank_of(&self, value: &str) -> Option<usize> {
        self.index.get(value).copied()
    }

    /// Answers with probability at least `threshold`.
    pub fn at_least(&self, threshold: f64) -> impl Iterator<Item = &RankedAnswer> {
        self.items
            .iter()
            .filter(move |a| a.probability >= threshold)
    }

    /// Number of distinct answer values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no answers.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl fmt::Display for RankedAnswers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.items {
            writeln!(f, "{:>5.1}% {}", a.probability * 100.0, a.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_descending() {
        let answers = RankedAnswers::from_pairs(vec![
            ("Mission: Impossible".into(), 0.21),
            ("Die Hard: With a Vengeance".into(), 1.0),
            ("Mission: Impossible II".into(), 0.96),
        ]);
        let values: Vec<&str> = answers.items.iter().map(|a| a.value.as_str()).collect();
        assert_eq!(
            values,
            vec![
                "Die Hard: With a Vengeance",
                "Mission: Impossible II",
                "Mission: Impossible"
            ]
        );
    }

    #[test]
    fn ties_break_by_document_order() {
        // "Jaws 2" occurs first in the document, so at equal probability
        // it ranks first — deterministic, and independent of the values'
        // lexicographic order.
        let answers =
            RankedAnswers::from_pairs(vec![("Jaws 2".into(), 0.97), ("Jaws".into(), 0.97)]);
        assert_eq!(answers.items[0].value, "Jaws 2");
        assert_eq!(answers.items[1].value, "Jaws");
        // The tie-break is stable under a higher-ranked prefix too.
        let answers = RankedAnswers::from_pairs(vec![
            ("B".into(), 0.5),
            ("A".into(), 0.5),
            ("C".into(), 0.9),
        ]);
        let values: Vec<&str> = answers.items.iter().map(|a| a.value.as_str()).collect();
        assert_eq!(values, vec!["C", "B", "A"]);
    }

    #[test]
    fn lookups_and_thresholds() {
        let answers = RankedAnswers::from_pairs(vec![("A".into(), 0.9), ("B".into(), 0.2)]);
        assert_eq!(answers.probability_of("A"), 0.9);
        assert_eq!(answers.probability_of("missing"), 0.0);
        assert_eq!(answers.rank_of("A"), Some(0));
        assert_eq!(answers.rank_of("B"), Some(1));
        assert_eq!(answers.rank_of("missing"), None);
        assert_eq!(answers.at_least(0.5).count(), 1);
        assert_eq!(answers.len(), 2);
        assert!(!answers.is_empty());
    }

    #[test]
    fn duplicate_values_resolve_to_the_highest_ranked_occurrence() {
        let answers = RankedAnswers::from_pairs(vec![("A".into(), 0.2), ("A".into(), 0.9)]);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers.probability_of("A"), 0.9);
        assert_eq!(answers.rank_of("A"), Some(0));
    }

    #[test]
    fn equality_ignores_the_internal_index() {
        let a = RankedAnswers::from_pairs(vec![("A".into(), 0.9)]);
        let b = RankedAnswers::from_pairs(vec![("A".into(), 0.9)]);
        assert_eq!(a, b);
    }

    #[test]
    fn display_formats_percentages() {
        let answers = RankedAnswers::from_pairs(vec![("Jaws".into(), 0.97)]);
        assert_eq!(answers.to_string(), " 97.0% Jaws\n");
    }
}
