//! Amalgamated, likelihood-ranked answers.

use std::fmt;

/// One ranked answer value.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnswer {
    /// The answer's string value (e.g. a movie title).
    pub value: String,
    /// Exact probability that this value occurs in the query answer.
    pub probability: f64,
}

/// The amalgamated answer: distinct values ranked by likelihood.
///
/// This is the paper's "sequence of possible result elements ranked by
/// likelihood" — e.g. `97% Jaws`, `97% Jaws 2` for the Horror query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankedAnswers {
    /// Answers sorted by descending probability (ties: lexicographic by
    /// value, for deterministic output).
    pub items: Vec<RankedAnswer>,
}

impl RankedAnswers {
    /// Build from unordered `(value, probability)` pairs.
    pub fn from_pairs(pairs: Vec<(String, f64)>) -> Self {
        let mut items: Vec<RankedAnswer> = pairs
            .into_iter()
            .map(|(value, probability)| RankedAnswer { value, probability })
            .collect();
        items.sort_by(|a, b| {
            b.probability
                .partial_cmp(&a.probability)
                .expect("finite probabilities")
                .then_with(|| a.value.cmp(&b.value))
        });
        RankedAnswers { items }
    }

    /// The probability of a specific value (0 when absent).
    pub fn probability_of(&self, value: &str) -> f64 {
        self.items
            .iter()
            .find(|a| a.value == value)
            .map_or(0.0, |a| a.probability)
    }

    /// Answers with probability at least `threshold`.
    pub fn at_least(&self, threshold: f64) -> impl Iterator<Item = &RankedAnswer> {
        self.items
            .iter()
            .filter(move |a| a.probability >= threshold)
    }

    /// Number of distinct answer values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no answers.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl fmt::Display for RankedAnswers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.items {
            writeln!(f, "{:>5.1}% {}", a.probability * 100.0, a.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_descending_with_lexicographic_ties() {
        let answers = RankedAnswers::from_pairs(vec![
            ("Mission: Impossible".into(), 0.21),
            ("Die Hard: With a Vengeance".into(), 1.0),
            ("Mission: Impossible II".into(), 0.96),
        ]);
        let values: Vec<&str> = answers.items.iter().map(|a| a.value.as_str()).collect();
        assert_eq!(
            values,
            vec![
                "Die Hard: With a Vengeance",
                "Mission: Impossible II",
                "Mission: Impossible"
            ]
        );
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let answers =
            RankedAnswers::from_pairs(vec![("Jaws 2".into(), 0.97), ("Jaws".into(), 0.97)]);
        assert_eq!(answers.items[0].value, "Jaws");
        assert_eq!(answers.items[1].value, "Jaws 2");
    }

    #[test]
    fn lookups_and_thresholds() {
        let answers = RankedAnswers::from_pairs(vec![("A".into(), 0.9), ("B".into(), 0.2)]);
        assert_eq!(answers.probability_of("A"), 0.9);
        assert_eq!(answers.probability_of("missing"), 0.0);
        assert_eq!(answers.at_least(0.5).count(), 1);
        assert_eq!(answers.len(), 2);
        assert!(!answers.is_empty());
    }

    #[test]
    fn display_formats_percentages() {
        let answers = RankedAnswers::from_pairs(vec![("Jaws".into(), 0.97)]);
        assert_eq!(answers.to_string(), " 97.0% Jaws\n");
    }
}
