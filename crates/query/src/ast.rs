//! Query abstract syntax.

use std::fmt;

/// A complete query: an absolute path from the document root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The steps, applied from the (virtual) document node.
    pub steps: Vec<Step>,
}

/// A relative path (used inside predicates), applied from a context node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelPath {
    /// The steps; an empty list denotes the context node itself (`.`).
    pub steps: Vec<Step>,
}

impl RelPath {
    /// The path `.` — the context node itself.
    pub fn self_path() -> Self {
        RelPath { steps: Vec::new() }
    }
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// `/` (child) or `//` (descendant).
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Zero or more predicates, all of which must hold.
    pub predicates: Vec<Expr>,
}

/// Step axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/x` — element children.
    Child,
    /// `//x` — element descendants (descendant-or-self then child, as in
    /// XPath's abbreviated syntax).
    Descendant,
}

/// Node test of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A tag name.
    Tag(String),
    /// `*` — any element.
    Any,
}

/// Ordering/inequality operator of a general comparison predicate
/// (`=` is the separate [`Expr::Eq`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Does `value OP literal` hold? Numeric comparison when both sides
    /// parse as numbers (XPath-style), byte-wise string ordering
    /// otherwise.
    pub fn holds(&self, value: &str, literal: &str) -> bool {
        let ord = match (value.trim().parse::<f64>(), literal.trim().parse::<f64>()) {
            (Ok(a), Ok(b)) => a.partial_cmp(&b),
            _ => Some(value.cmp(literal)),
        };
        let Some(ord) = ord else {
            return false; // NaN compares false under every operator
        };
        match self {
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }

    /// The operator's surface syntax.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate expression (boolean, with XPath's existential semantics for
/// paths and comparisons).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A relative path: true iff it selects at least one node.
    Exists(RelPath),
    /// `path = "literal"`: true iff some selected node's string value
    /// equals the literal.
    Eq(RelPath, String),
    /// `path OP literal` for the ordering/inequality operators: true iff
    /// some selected node's value satisfies the comparison (existential,
    /// like XPath: `year != "1995"` holds when *some* year differs).
    Cmp(RelPath, CmpOp, String),
    /// `contains(path, "literal")`: true iff some selected node's string
    /// value contains the literal as a substring.
    Contains(RelPath, String),
    /// `starts-with(path, "literal")`: true iff some selected node's
    /// string value starts with the literal.
    StartsWith(RelPath, String),
    /// `some $x in path satisfies cond`: true iff some selected node
    /// satisfies `cond` evaluated with that node as context.
    Some {
        /// The range path.
        path: RelPath,
        /// The condition, in which [`RelPath::self_path`] refers to the
        /// bound variable.
        cond: Box<Expr>,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation (`not(…)`).
    Not(Box<Expr>),
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Tag(t) => write!(f, "{t}"),
            NodeTest::Any => write!(f, "*"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Exists(p) => write!(f, "{p}"),
            Expr::Eq(p, lit) => write!(f, "{p}={lit:?}"),
            Expr::Cmp(p, op, lit) => write!(f, "{p}{}{lit:?}", op.symbol()),
            Expr::Contains(p, lit) => write!(f, "contains({p},{lit:?})"),
            Expr::StartsWith(p, lit) => write!(f, "starts-with({p},{lit:?})"),
            Expr::Some { path, cond } => write!(f, "some $x in {path} satisfies {cond}"),
            Expr::And(a, b) => write!(f, "{a} and {b}"),
            Expr::Or(a, b) => write!(f, "{a} or {b}"),
            Expr::Not(e) => write!(f, "not({e})"),
        }
    }
}

impl fmt::Display for RelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, ".");
        }
        write!(f, ".")?;
        for s in &self.steps {
            write!(f, "{}{}", s.axis, s.test)?;
            for p in &s.predicates {
                write!(f, "[{p}]")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            write!(f, "{}{}", s.axis, s.test)?;
            for p in &s.predicates {
                write!(f, "[{p}]")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_simple_shapes() {
        let q = Query {
            steps: vec![
                Step {
                    axis: Axis::Descendant,
                    test: NodeTest::Tag("movie".into()),
                    predicates: vec![Expr::Eq(
                        RelPath {
                            steps: vec![Step {
                                axis: Axis::Descendant,
                                test: NodeTest::Tag("genre".into()),
                                predicates: vec![],
                            }],
                        },
                        "Horror".into(),
                    )],
                },
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Tag("title".into()),
                    predicates: vec![],
                },
            ],
        };
        assert_eq!(q.to_string(), "//movie[.//genre=\"Horror\"]/title");
    }

    #[test]
    fn self_path_displays_as_dot() {
        assert_eq!(RelPath::self_path().to_string(), ".");
    }

    #[test]
    fn cmp_op_numeric_and_string_semantics() {
        assert!(CmpOp::Ge.holds("1995", "1995"));
        assert!(CmpOp::Lt.holds("978", "1995")); // numeric, not byte-wise
        assert!(!CmpOp::Lt.holds("1995", "1995"));
        assert!(CmpOp::Ne.holds("a", "b"));
        assert!(CmpOp::Le.holds("abc", "abd")); // string ordering fallback
        assert!(CmpOp::Gt.holds("b", "a"));
        // NaN literals never satisfy an ordering.
        assert!(!CmpOp::Lt.holds("NaN", "NaN"));
        assert!(CmpOp::Ge.holds(" 7 ", "7")); // values are trimmed
    }

    #[test]
    fn cmp_symbols_round_trip() {
        for op in [CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert!(!op.symbol().is_empty());
        }
    }
}
