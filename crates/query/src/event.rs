//! The event algebra over choice points, and exact probability
//! computation.
//!
//! Every probability node of a [`PxDoc`] is an independent random variable
//! that selects one of its possibilities. Any query-related event (a node
//! exists, a predicate holds, a value appears in the answer) is a boolean
//! combination of *atoms* "probability node v selected possibility i".
//! Probabilities of such events are computed exactly by Shannon expansion:
//! pick a variable occurring in the event, split on its possibilities,
//! recurse on the simplified cofactors. Expansion in ascending node-id
//! order follows document order, which keeps cofactors small because an
//! outer choice's atoms dominate the events of everything beneath it.

use imprecise_pxml::{ChoiceWeights, PxDoc, PxNodeId};
use std::collections::HashMap;

/// An atom: "probability node `prob_node` selects possibility `poss_index`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChoiceAtom {
    /// The probability node (the variable).
    pub prob_node: PxNodeId,
    /// Index of the selected possibility within it.
    pub poss_index: u32,
}

/// A boolean event over choice atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// Always true.
    True,
    /// Always false.
    False,
    /// A single atom.
    Atom(ChoiceAtom),
    /// All of the inner events (flattened, never empty).
    And(Vec<Event>),
    /// Any of the inner events (flattened, never empty).
    Or(Vec<Event>),
    /// Negation.
    Not(Box<Event>),
}

impl Event {
    /// Smart conjunction with eager simplification.
    pub fn and(a: Event, b: Event) -> Event {
        match (a, b) {
            (Event::False, _) | (_, Event::False) => Event::False,
            (Event::True, x) | (x, Event::True) => x,
            (a, b) => {
                let mut parts = Vec::new();
                flatten_and(a, &mut parts);
                flatten_and(b, &mut parts);
                // Contradictory or duplicate atoms on the same variable.
                let mut seen: Vec<ChoiceAtom> = Vec::new();
                let mut out: Vec<Event> = Vec::new();
                for e in parts {
                    if let Event::Atom(atom) = &e {
                        if let Some(prev) = seen.iter().find(|x| x.prob_node == atom.prob_node) {
                            if prev.poss_index == atom.poss_index {
                                continue; // duplicate
                            }
                            return Event::False; // contradiction
                        }
                        seen.push(*atom);
                    }
                    out.push(e);
                }
                match out.len() {
                    0 => Event::True,
                    // lint:allow(expect-in-lib, holds by construction: len checked)
                    1 => out.pop().expect("len checked"),
                    _ => Event::And(out),
                }
            }
        }
    }

    /// Smart disjunction with eager simplification.
    pub fn or(a: Event, b: Event) -> Event {
        match (a, b) {
            (Event::True, _) | (_, Event::True) => Event::True,
            (Event::False, x) | (x, Event::False) => x,
            (a, b) => {
                let mut parts = Vec::new();
                flatten_or(a, &mut parts);
                flatten_or(b, &mut parts);
                // Cheap duplicate elimination for identical events.
                let mut out: Vec<Event> = Vec::new();
                for e in parts {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
                match out.len() {
                    0 => Event::False,
                    // lint:allow(expect-in-lib, holds by construction: len checked)
                    1 => out.pop().expect("len checked"),
                    _ => Event::Or(out),
                }
            }
        }
    }

    /// Negation with eager simplification (an associated constructor in
    /// the spirit of `Event::and`/`Event::or`, not the `!` operator).
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Event) -> Event {
        match e {
            Event::True => Event::False,
            Event::False => Event::True,
            Event::Not(inner) => *inner,
            other => Event::Not(Box::new(other)),
        }
    }

    /// Disjunction of many events.
    pub fn any(events: impl IntoIterator<Item = Event>) -> Event {
        events.into_iter().fold(Event::False, Event::or)
    }

    /// Conjunction of many events.
    pub fn all(events: impl IntoIterator<Item = Event>) -> Event {
        events.into_iter().fold(Event::True, Event::and)
    }

    /// The smallest variable (probability node) occurring in the event.
    fn first_variable(&self) -> Option<PxNodeId> {
        match self {
            Event::True | Event::False => None,
            Event::Atom(a) => Some(a.prob_node),
            Event::And(parts) | Event::Or(parts) => {
                parts.iter().filter_map(Event::first_variable).min()
            }
            Event::Not(inner) => inner.first_variable(),
        }
    }

    /// Substitute "variable `v` selects possibility `idx`" and simplify.
    fn assign(&self, v: PxNodeId, idx: u32) -> Event {
        match self {
            Event::True => Event::True,
            Event::False => Event::False,
            Event::Atom(a) => {
                if a.prob_node == v {
                    if a.poss_index == idx {
                        Event::True
                    } else {
                        Event::False
                    }
                } else {
                    Event::Atom(*a)
                }
            }
            Event::And(parts) => parts
                .iter()
                .fold(Event::True, |acc, p| Event::and(acc, p.assign(v, idx))),
            Event::Or(parts) => parts
                .iter()
                .fold(Event::False, |acc, p| Event::or(acc, p.assign(v, idx))),
            Event::Not(inner) => Event::not(inner.assign(v, idx)),
        }
    }
}

/// A partial assignment of choice points: each listed probability node is
/// fixed to the possibility at the paired index. Unlisted variables stay
/// free (their distributions are untouched).
pub type PartialAssignment = Vec<(PxNodeId, u32)>;

/// All satisfying partial assignments of `event`, each with its prior
/// weight (the product of the assigned possibilities' probabilities).
///
/// The assignments are produced by Shannon expansion in ascending variable
/// order, so they are mutually exclusive and cover the event exactly:
/// the weights sum to [`probability`]`(doc, event)`. An assignment stops
/// extending as soon as the cofactor is decided, so variables the event no
/// longer depends on are left free (their weight is marginalised out).
///
/// Returns `None` when more than `cap` satisfying assignments would be
/// produced — the caller should fall back to coarser machinery.
pub fn satisfying_assignments(
    doc: &PxDoc,
    event: &Event,
    cap: usize,
) -> Option<Vec<(PartialAssignment, f64)>> {
    let mut sat: Vec<(PartialAssignment, f64)> = Vec::new();
    let mut pending: Vec<(Event, PartialAssignment, f64)> = vec![(event.clone(), Vec::new(), 1.0)];
    while let Some((e, assignment, weight)) = pending.pop() {
        match e {
            Event::False => {}
            Event::True => {
                if sat.len() >= cap {
                    return None;
                }
                sat.push((assignment, weight));
            }
            other => {
                let v = other
                    .first_variable()
                    // lint:allow(expect-in-lib, holds by construction: non-constant event has a variable)
                    .expect("non-constant event has a variable");
                for (idx, &poss) in doc.children(v).iter().enumerate() {
                    // lint:allow(expect-in-lib, holds by construction: prob child is poss)
                    let p = doc.poss_prob(poss).expect("prob child is poss");
                    if p == 0.0 {
                        continue;
                    }
                    let cofactor = other.assign(v, idx as u32);
                    if cofactor == Event::False {
                        continue;
                    }
                    let mut extended = assignment.clone();
                    extended.push((v, idx as u32));
                    pending.push((cofactor, extended, weight * p));
                }
            }
        }
    }
    Some(sat)
}

fn flatten_and(e: Event, out: &mut Vec<Event>) {
    match e {
        Event::And(parts) => {
            for p in parts {
                flatten_and(p, out);
            }
        }
        other => out.push(other),
    }
}

fn flatten_or(e: Event, out: &mut Vec<Event>) {
    match e {
        Event::Or(parts) => {
            for p in parts {
                flatten_or(p, out);
            }
        }
        other => out.push(other),
    }
}

/// Exact probability of an event under the document's choice weights,
/// by Shannon expansion in ascending variable order.
pub fn probability(doc: &PxDoc, event: &Event) -> f64 {
    match event {
        Event::True => 1.0,
        Event::False => 0.0,
        _ => {
            let v = event
                .first_variable()
                // lint:allow(expect-in-lib, holds by construction: non-constant event has a variable)
                .expect("non-constant event has a variable");
            let mut total = 0.0;
            for (idx, &poss) in doc.children(v).iter().enumerate() {
                // lint:allow(expect-in-lib, holds by construction: prob child is poss)
                let w = doc.poss_prob(poss).expect("prob child is poss");
                if w == 0.0 {
                    continue;
                }
                let cofactor = event.assign(v, idx as u32);
                total += w * probability(doc, &cofactor);
            }
            total
        }
    }
}

/// Cheap, sound bounds `(lower, upper)` on the probability of an event,
/// computed structurally in one pass (no Shannon expansion).
///
/// The bounds are the Fréchet inequalities — they hold for *any*
/// dependence between the sub-events, so they are safe to use for
/// threshold pruning: if `upper < t`, the exact probability is `< t`.
/// Atoms are exact (an atom's probability *is* its possibility weight).
pub fn probability_bounds(weights: &ChoiceWeights, event: &Event) -> (f64, f64) {
    match event {
        Event::True => (1.0, 1.0),
        Event::False => (0.0, 0.0),
        Event::Atom(a) => {
            let w = weights.of(a.prob_node)[a.poss_index as usize];
            (w, w)
        }
        Event::And(parts) => {
            // P(⋀) ≤ min Pᵢ and P(⋀) ≥ 1 - Σ(1 - Pᵢ).
            let mut lo_deficit = 0.0;
            let mut hi = 1.0f64;
            for p in parts {
                let (l, h) = probability_bounds(weights, p);
                lo_deficit += 1.0 - l;
                hi = hi.min(h);
            }
            ((1.0 - lo_deficit).max(0.0), hi)
        }
        Event::Or(parts) => {
            // P(⋁) ≥ max Pᵢ and P(⋁) ≤ Σ Pᵢ.
            let mut lo = 0.0f64;
            let mut hi_sum = 0.0;
            for p in parts {
                let (l, h) = probability_bounds(weights, p);
                lo = lo.max(l);
                hi_sum += h;
            }
            (lo, hi_sum.min(1.0))
        }
        Event::Not(inner) => {
            let (l, h) = probability_bounds(weights, inner);
            (1.0 - h, 1.0 - l)
        }
    }
}

/// Memo table for [`probability_memo`]: exact probabilities of queried
/// events, valid for one document version.
///
/// Caching is at whole-event granularity: re-asking the probability of
/// an event already computed this execution (e.g. the same answer event
/// reached through a later step, or a re-run over the same snapshot) is
/// a single lookup. Expansion cofactors are deliberately *not* cached —
/// hashing every intermediate event costs more than the expansion saves.
/// A hit never changes a result: it returns a value previously computed
/// by the identical expansion.
#[derive(Debug, Clone, Default)]
pub struct ProbMemo {
    cache: HashMap<Event, f64>,
}

impl ProbMemo {
    /// An empty memo table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached (event, probability) entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Exact probability of an event by Shannon expansion over a
/// precomputed [`ChoiceWeights`] table, memoized per event in `memo`
/// (see [`ProbMemo`]). Computes bit-identical values to [`probability`].
pub fn probability_memo(weights: &ChoiceWeights, event: &Event, memo: &mut ProbMemo) -> f64 {
    match event {
        Event::True => 1.0,
        Event::False => 0.0,
        _ => {
            if let Some(&p) = memo.cache.get(event) {
                return p;
            }
            let p = probability_weights(weights, event);
            memo.cache.insert(event.clone(), p);
            p
        }
    }
}

/// Slack subtracted from pruning thresholds (both the structural-bound
/// gate and [`probability_above`]'s aborts) so floating-point drift in a
/// bound can never prune an answer whose true probability sits exactly
/// at the threshold.
pub(crate) const ABOVE_SLACK: f64 = 1e-12;

/// Branch-and-bound Shannon expansion: the exact probability of `event`,
/// or `None` as soon as the expansion *proves* the probability is below
/// `min_required` (the remaining unresolved probability mass can no
/// longer lift the running total to the threshold).
///
/// For events that pass, the returned value is bit-identical to
/// [`probability`] — the bound checks add comparisons, never arithmetic,
/// on the surviving path. For events that fail, most of the expansion is
/// skipped; this is where threshold pushdown wins over evaluate-then-
/// filter. The abort checks carry a tiny slack so an answer whose true
/// probability equals the threshold is never aborted by rounding drift
/// in the bound itself.
pub fn probability_above(weights: &ChoiceWeights, event: &Event, min_required: f64) -> Option<f64> {
    match event {
        Event::True => Some(1.0),
        Event::False => Some(0.0),
        _ => {
            let v = event
                .first_variable()
                // lint:allow(expect-in-lib, holds by construction: non-constant event has a variable)
                .expect("non-constant event has a variable");
            let ws = weights.of(v);
            let mut remaining: f64 = ws.iter().sum();
            let mut total = 0.0;
            for (idx, &w) in ws.iter().enumerate() {
                remaining -= w;
                if w == 0.0 {
                    continue;
                }
                // Even if this and every later possibility contributed
                // fully, can the total still reach the threshold?
                if total + w + remaining < min_required - ABOVE_SLACK {
                    return None;
                }
                let cofactor = event.assign(v, idx as u32);
                // What this cofactor must contribute for the total to
                // still be reachable, given the rest contributes fully.
                let need = min_required - total - remaining;
                let sub_required = if need > 0.0 { need / w } else { 0.0 };
                let p = probability_above(weights, &cofactor, sub_required)?;
                total += w * p;
            }
            Some(total)
        }
    }
}

/// Exact probability by Shannon expansion, reading possibility weights
/// from the flat [`ChoiceWeights`] table instead of walking the arena.
/// Identical arithmetic to [`probability`] (bit-identical results).
/// Uncached: the right call when each event is asked exactly once.
pub(crate) fn probability_weights(weights: &ChoiceWeights, event: &Event) -> f64 {
    match event {
        Event::True => 1.0,
        Event::False => 0.0,
        _ => {
            let v = event
                .first_variable()
                // lint:allow(expect-in-lib, holds by construction: non-constant event has a variable)
                .expect("non-constant event has a variable");
            let mut total = 0.0;
            for (idx, &w) in weights.of(v).iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let cofactor = event.assign(v, idx as u32);
                total += w * probability_weights(weights, &cofactor);
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A document with two independent binary choices (30/70 and 40/60).
    fn doc2() -> (PxDoc, PxNodeId, PxNodeId) {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c1 = px.add_prob(e);
        let a = px.add_poss(c1, 0.3);
        px.add_text_elem(a, "x", "1");
        let b = px.add_poss(c1, 0.7);
        px.add_text_elem(b, "x", "2");
        let c2 = px.add_prob(e);
        let c = px.add_poss(c2, 0.4);
        px.add_text_elem(c, "y", "1");
        let d = px.add_poss(c2, 0.6);
        px.add_text_elem(d, "y", "2");
        (px, c1, c2)
    }

    fn atom(v: PxNodeId, i: u32) -> Event {
        Event::Atom(ChoiceAtom {
            prob_node: v,
            poss_index: i,
        })
    }

    #[test]
    fn constants() {
        let (px, _, _) = doc2();
        assert_eq!(probability(&px, &Event::True), 1.0);
        assert_eq!(probability(&px, &Event::False), 0.0);
    }

    #[test]
    fn single_atom_probability() {
        let (px, c1, _) = doc2();
        assert!((probability(&px, &atom(c1, 0)) - 0.3).abs() < 1e-12);
        assert!((probability(&px, &atom(c1, 1)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn independent_conjunction_multiplies() {
        let (px, c1, c2) = doc2();
        let e = Event::and(atom(c1, 0), atom(c2, 1));
        assert!((probability(&px, &e) - 0.3 * 0.6).abs() < 1e-12);
    }

    #[test]
    fn disjunction_inclusion_exclusion() {
        let (px, c1, c2) = doc2();
        let e = Event::or(atom(c1, 0), atom(c2, 0));
        let expected = 0.3 + 0.4 - 0.3 * 0.4;
        assert!((probability(&px, &e) - expected).abs() < 1e-12);
    }

    #[test]
    fn contradictory_atoms_conjoin_to_false() {
        let (_, c1, _) = doc2();
        assert_eq!(Event::and(atom(c1, 0), atom(c1, 1)), Event::False);
        assert_eq!(Event::and(atom(c1, 0), atom(c1, 0)), atom(c1, 0));
    }

    #[test]
    fn exclusive_atoms_add() {
        let (px, c1, _) = doc2();
        let e = Event::or(atom(c1, 0), atom(c1, 1));
        assert!((probability(&px, &e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negation_complements() {
        let (px, c1, _) = doc2();
        let e = Event::not(atom(c1, 0));
        assert!((probability(&px, &e) - 0.7).abs() < 1e-12);
        assert_eq!(Event::not(Event::not(atom(c1, 0))), atom(c1, 0));
    }

    #[test]
    fn shared_variable_correlation_is_exact() {
        let (px, c1, c2) = doc2();
        // (c1=0 ∧ c2=0) ∨ (c1=0 ∧ c2=1) = c1=0 → 0.3, not 0.12+0.18 minus
        // anything approximate.
        let e = Event::or(
            Event::and(atom(c1, 0), atom(c2, 0)),
            Event::and(atom(c1, 0), atom(c2, 1)),
        );
        assert!((probability(&px, &e) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn de_morgan_consistency() {
        let (px, c1, c2) = doc2();
        let a = atom(c1, 0);
        let b = atom(c2, 0);
        let lhs = Event::not(Event::and(a.clone(), b.clone()));
        let rhs = Event::or(Event::not(a), Event::not(b));
        assert!((probability(&px, &lhs) - probability(&px, &rhs)).abs() < 1e-12);
    }

    #[test]
    fn any_and_all_helpers() {
        let (px, c1, c2) = doc2();
        let e = Event::all([atom(c1, 1), atom(c2, 1), Event::True]);
        assert!((probability(&px, &e) - 0.42).abs() < 1e-12);
        let e = Event::any([Event::False, atom(c1, 0)]);
        assert!((probability(&px, &e) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn satisfying_assignments_cover_the_event_exactly() {
        let (px, c1, c2) = doc2();
        for event in [
            atom(c1, 0),
            Event::or(atom(c1, 0), atom(c2, 0)),
            Event::and(atom(c1, 1), atom(c2, 0)),
            Event::not(Event::and(atom(c1, 0), atom(c2, 0))),
            Event::or(
                Event::and(atom(c1, 0), atom(c2, 0)),
                Event::and(atom(c1, 0), atom(c2, 1)),
            ),
        ] {
            let sat = satisfying_assignments(&px, &event, 1000).expect("under cap");
            let total: f64 = sat.iter().map(|(_, w)| w).sum();
            assert!(
                (total - probability(&px, &event)).abs() < 1e-12,
                "{event:?}: weights {total} vs probability"
            );
            // Assignments are mutually exclusive: they differ on their
            // first shared variable or one extends the other — never both
            // satisfied in one world. Verified pairwise on the variables.
            for (i, (a, _)) in sat.iter().enumerate() {
                for (b, _) in &sat[i + 1..] {
                    let conflict = a
                        .iter()
                        .any(|(v, x)| b.iter().any(|(w, y)| v == w && x != y));
                    assert!(conflict, "{a:?} and {b:?} overlap");
                }
            }
        }
    }

    #[test]
    fn satisfying_assignments_constants_and_cap() {
        let (px, c1, _) = doc2();
        assert_eq!(satisfying_assignments(&px, &Event::False, 10), Some(vec![]));
        let all = satisfying_assignments(&px, &Event::True, 10).unwrap();
        assert_eq!(all, vec![(vec![], 1.0)]);
        // Cap of 1 cannot hold the two satisfying assignments of a
        // disjunction across two variables.
        let e = Event::or(atom(c1, 0), atom(c1, 1));
        assert!(satisfying_assignments(&px, &e, 1).is_none());
    }

    #[test]
    fn satisfying_assignments_leave_decided_variables_free() {
        let (px, c1, _) = doc2();
        // c1=0 decides the event: c2 never appears in any assignment.
        let sat = satisfying_assignments(&px, &atom(c1, 0), 10).unwrap();
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0].0, vec![(c1, 0)]);
        assert!((sat[0].1 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bounds_bracket_exact_probability() {
        let (px, c1, c2) = doc2();
        let weights = px.choice_weights();
        let events = [
            Event::True,
            Event::False,
            atom(c1, 0),
            Event::not(atom(c1, 0)),
            Event::and(atom(c1, 0), atom(c2, 1)),
            Event::or(atom(c1, 0), atom(c2, 0)),
            Event::or(
                Event::and(atom(c1, 0), atom(c2, 0)),
                Event::and(atom(c1, 1), atom(c2, 1)),
            ),
            Event::not(Event::and(atom(c1, 0), atom(c2, 0))),
        ];
        for e in events {
            let (lo, hi) = probability_bounds(&weights, &e);
            let p = probability(&px, &e);
            assert!(
                lo <= p + 1e-12 && p <= hi + 1e-12,
                "{e:?}: {p} outside [{lo}, {hi}]"
            );
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
        // Atoms are exact.
        let (lo, hi) = probability_bounds(&weights, &atom(c1, 0));
        assert_eq!((lo, hi), (0.3, 0.3));
    }

    #[test]
    fn branch_and_bound_is_exact_for_survivors_and_sound_for_prunees() {
        let (px, c1, c2) = doc2();
        let weights = px.choice_weights();
        let events = [
            atom(c1, 0),                                      // 0.3
            atom(c1, 1),                                      // 0.7
            Event::or(atom(c1, 0), atom(c2, 0)),              // 0.58
            Event::and(atom(c1, 1), atom(c2, 1)),             // 0.42
            Event::not(Event::and(atom(c1, 0), atom(c2, 0))), // 0.88
        ];
        for e in &events {
            let p = probability(&px, e);
            for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
                match probability_above(&weights, e, t) {
                    Some(got) => assert_eq!(got.to_bits(), p.to_bits(), "{e:?} at {t}"),
                    None => assert!(p < t, "{e:?}: aborted at {t} but p = {p}"),
                }
            }
            // A threshold exactly at the probability never aborts.
            assert_eq!(
                probability_above(&weights, e, p).map(f64::to_bits),
                Some(p.to_bits()),
                "{e:?}"
            );
        }
        // Constants short-circuit.
        assert_eq!(probability_above(&weights, &Event::True, 0.9), Some(1.0));
        assert_eq!(probability_above(&weights, &Event::False, 0.9), Some(0.0));
    }

    #[test]
    fn memoized_probability_matches_plain() {
        let (px, c1, c2) = doc2();
        let weights = px.choice_weights();
        let mut memo = ProbMemo::new();
        let events = [
            atom(c1, 0),
            Event::or(atom(c1, 0), atom(c2, 0)),
            Event::not(Event::and(atom(c1, 0), atom(c2, 0))),
            Event::or(atom(c1, 0), atom(c2, 0)), // repeat: served from cache
        ];
        for e in &events {
            let plain = probability(&px, e);
            let memoized = probability_memo(&weights, e, &mut memo);
            assert_eq!(plain.to_bits(), memoized.to_bits(), "{e:?}");
        }
        assert!(!memo.is_empty());
        assert!(memo.len() >= 2);
    }

    #[test]
    fn three_way_choice() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let e = px.add_elem(w, "doc");
        let c = px.add_prob(e);
        for (i, weight) in [0.2, 0.3, 0.5].iter().enumerate() {
            let poss = px.add_poss(c, *weight);
            px.add_text_elem(poss, "v", format!("{i}"));
        }
        let ev = Event::or(atom(c, 0), atom(c, 2));
        assert!((probability(&px, &ev) - 0.7).abs() < 1e-12);
    }
}
