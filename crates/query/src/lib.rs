//! # imprecise-query — querying probabilistic XML
//!
//! §VI of the IMPrECISE paper: *"In theory, the semantics of a query is the
//! set of possible answers obtained by evaluating the query in each of the
//! possible worlds separately. … Because XQuery answers are always
//! sequences, we can construct an amalgamated answer by merging and ranking
//! the elements of all possible answers."*
//!
//! This crate provides:
//!
//! * a parser ([`parse_query`]) for the XPath fragment the paper's demo
//!   queries use — `/` and `//` steps, `*` and tag tests, predicates with
//!   `=`, `contains(…)`, `and` / `or` / `not(…)`, and XQuery's
//!   `some $x in path satisfies cond` (which the second demo query needs);
//! * evaluation over ordinary certain documents ([`eval_xml`]);
//! * **exact** probabilistic evaluation over [`imprecise_pxml::PxDoc`]
//!   ([`eval_px`]): every answer value's probability is the exact
//!   probability of the event "some occurrence of this value is in the
//!   query result", computed symbolically over the document's choice
//!   points — no world enumeration;
//! * a **compile-then-execute pipeline** ([`QueryPlan`] compiled from the
//!   AST, executed as a lazy [`AnswerStream`] of typed [`Answer`]s):
//!   logical step normalization, a physical operator chain with hoisted
//!   value tests, probability-threshold pushdown that prunes candidates
//!   on cheap event bounds before any exact probability is computed, and
//!   per-execution memo tables for node value events and event
//!   probabilities;
//! * a naive all-worlds evaluator ([`eval_px_naive`]) used as a semantic
//!   oracle in tests (`eval_px` ≡ `eval_px_naive` on every document).
//!
//! ## The paper's example
//!
//! ```
//! use imprecise_query::{parse_query, eval_px};
//! use imprecise_pxml::PxDoc;
//!
//! // An integrated movie database where "Jaws" certainly exists and
//! // "Jaws 2" exists in half the worlds.
//! let mut px = PxDoc::new();
//! let w = px.add_poss(px.root(), 1.0);
//! let cat = px.add_elem(w, "catalog");
//! let m1 = px.add_elem(cat, "movie");
//! px.add_text_elem(m1, "title", "Jaws");
//! px.add_text_elem(m1, "genre", "Horror");
//! let choice = px.add_prob(cat);
//! let yes = px.add_poss(choice, 0.5);
//! let m2 = px.add_elem(yes, "movie");
//! px.add_text_elem(m2, "title", "Jaws 2");
//! px.add_text_elem(m2, "genre", "Horror");
//! px.add_poss(choice, 0.5); // world without Jaws 2
//!
//! let q = parse_query("//movie[genre=\"Horror\"]/title").unwrap();
//! let answers = eval_px(&px, &q).unwrap();
//! assert_eq!(answers.items[0].value, "Jaws");
//! assert!((answers.items[0].probability - 1.0).abs() < 1e-12);
//! assert_eq!(answers.items[1].value, "Jaws 2");
//! assert!((answers.items[1].probability - 0.5).abs() < 1e-12);
//! ```

pub mod answer;
pub mod ast;
pub mod event;
pub mod naive;
pub mod parse;
pub mod plan;
pub mod px_eval;
pub mod stream;
pub mod xml_eval;

pub use answer::{RankedAnswer, RankedAnswers};
pub use ast::{Axis, Expr, NodeTest, Query, RelPath, Step};
pub use event::{
    probability_above, probability_bounds, probability_memo, satisfying_assignments, ChoiceAtom,
    Event, PartialAssignment, ProbMemo,
};
pub use naive::eval_px_naive;
pub use parse::{parse_query, QueryParseError};
pub use plan::QueryPlan;
pub use px_eval::{answer_event, answer_events, eval_px, EvalError};
pub use stream::{Answer, AnswerStream, AnswerValue};
pub use xml_eval::eval_xml;
