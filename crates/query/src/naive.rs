//! The naive possible-worlds evaluator: the literal reading of §VI.
//!
//! "In theory, the semantics of a query is the set of possible answers
//! obtained by evaluating the query in each of the possible worlds
//! separately." This module does exactly that — enumerate worlds, run the
//! ordinary evaluator in each, sum world probabilities per answer value.
//! It is exponential and only exists as the semantic reference that the
//! exact symbolic evaluator ([`crate::eval_px`]) is tested against, and as
//! the baseline that the `queries` bench compares against.

use crate::answer::RankedAnswers;
use crate::ast::Query;
use crate::xml_eval::eval_xml_values;
use imprecise_pxml::{PxDoc, TooManyWorlds};
use std::collections::HashMap;

/// Evaluate by full world enumeration (up to `world_cap` worlds).
pub fn eval_px_naive(
    doc: &PxDoc,
    query: &Query,
    world_cap: usize,
) -> Result<RankedAnswers, TooManyWorlds> {
    let worlds = doc.worlds(world_cap)?;
    let mut order: Vec<String> = Vec::new();
    let mut acc: HashMap<String, f64> = HashMap::new();
    for world in &worlds {
        for value in eval_xml_values(&world.doc, query) {
            match acc.get_mut(&value) {
                Some(p) => *p += world.prob,
                None => {
                    order.push(value.clone());
                    acc.insert(value, world.prob);
                }
            }
        }
    }
    let pairs = order
        .into_iter()
        .map(|v| {
            let p = acc[&v];
            (v, p)
        })
        .collect();
    Ok(RankedAnswers::from_pairs(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_px;
    use crate::parse::parse_query;
    use imprecise_pxml::PxDoc;

    /// Build a catalog with one certain movie and one 30% movie, plus an
    /// uncertain genre on the certain movie.
    fn mixed_doc() -> PxDoc {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m1 = px.add_elem(cat, "movie");
        px.add_text_elem(m1, "title", "Jaws");
        let g = px.add_elem(m1, "genre");
        let gc = px.add_prob(g);
        let g1 = px.add_poss(gc, 0.9);
        px.add_text(g1, "Horror");
        let g2 = px.add_poss(gc, 0.1);
        px.add_text(g2, "Thriller");
        let mc = px.add_prob(cat);
        let with = px.add_poss(mc, 0.3);
        let m2 = px.add_elem(with, "movie");
        px.add_text_elem(m2, "title", "Jaws 2");
        px.add_text_elem(m2, "genre", "Horror");
        px.add_poss(mc, 0.7);
        px
    }

    #[test]
    fn naive_agrees_with_exact_on_mixed_doc() {
        let px = mixed_doc();
        for q in [
            "//movie/title",
            "//movie[genre=\"Horror\"]/title",
            "//movie[not(genre=\"Horror\")]/title",
            "//movie[contains(title,\"2\")]/title",
            "//title",
        ] {
            let query = parse_query(q).unwrap();
            let naive = eval_px_naive(&px, &query, 10_000).unwrap();
            let exact = eval_px(&px, &query).unwrap();
            assert_eq!(naive.len(), exact.len(), "query {q}");
            for item in &naive.items {
                let p = exact.probability_of(&item.value);
                assert!(
                    (p - item.probability).abs() < 1e-9,
                    "query {q}, value {}: naive {} vs exact {p}",
                    item.value,
                    item.probability
                );
            }
        }
    }

    #[test]
    fn world_cap_respected() {
        let px = mixed_doc();
        let q = parse_query("//movie/title").unwrap();
        assert!(eval_px_naive(&px, &q, 1).is_err());
    }

    #[test]
    fn per_world_duplicates_count_once() {
        // Two movies with the same title in the same world: value counted
        // once, P = 1, not 2.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        for _ in 0..2 {
            let m = px.add_elem(cat, "movie");
            px.add_text_elem(m, "title", "Jaws");
        }
        let q = parse_query("//movie/title").unwrap();
        let naive = eval_px_naive(&px, &q, 100).unwrap();
        assert_eq!(naive.len(), 1);
        assert!((naive.items[0].probability - 1.0).abs() < 1e-12);
        // Exact evaluator agrees.
        let exact = eval_px(&px, &q).unwrap();
        assert!((exact.probability_of("Jaws") - 1.0).abs() < 1e-12);
    }
}
