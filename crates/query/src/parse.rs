//! Parser for the XPath fragment used by the paper's demo queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query      := ( '/' | '//' ) step ( ( '/' | '//' ) step )*
//! step       := ( name | '*' ) predicate*
//! predicate  := '[' expr ']'
//! expr       := and_expr ( 'or' and_expr )*
//! and_expr   := unary ( 'and' unary )*
//! unary      := 'not' '(' expr ')' | comparison
//! comparison := operand ( '=' literal )?
//! operand    := relpath
//!             | 'contains' '(' relpath ',' literal ')'
//!             | 'some' '$' name 'in' relpath 'satisfies' expr
//! relpath    := '$' name | '.' ( ('/'|'//') step )* | ('/'|'//')? step ( ... )*
//! literal    := '"' chars '"' | "'" chars "'"
//! ```
//!
//! Inside a `satisfies` condition, `$x` denotes the bound node and parses
//! to the self path.

use crate::ast::{Axis, CmpOp, Expr, NodeTest, Query, RelPath, Step};
use std::fmt;

/// A query parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for QueryParseError {}

/// Parse an absolute query like `//movie[.//genre="Horror"]/title`.
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let mut p = Parser {
        src: input,
        bytes: input.as_bytes(),
        pos: 0,
        bound_var: None,
    };
    p.skip_ws();
    let steps = p.parse_absolute_path()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    if steps.is_empty() {
        return Err(QueryParseError {
            offset: 0,
            message: "empty query".into(),
        });
    }
    Ok(Query { steps })
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Name of the variable bound by an enclosing `some` (for `$x` uses).
    bound_var: Option<String>,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Try to eat a keyword (must not be followed by a name character).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.src[self.pos..].starts_with(kw) {
            let after = self.pos + kw.len();
            let boundary = !self.bytes.get(after).copied().is_some_and(is_name_byte);
            if boundary {
                self.pos = after;
                return true;
            }
        }
        false
    }

    fn parse_absolute_path(&mut self) -> Result<Vec<Step>, QueryParseError> {
        let mut steps = Vec::new();
        loop {
            self.skip_ws();
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else if steps.is_empty() {
                return Err(self.err("query must start with '/' or '//'"));
            } else {
                break;
            };
            steps.push(self.parse_step(axis)?);
        }
        Ok(steps)
    }

    fn parse_step(&mut self, axis: Axis) -> Result<Step, QueryParseError> {
        self.skip_ws();
        let test = if self.eat("*") {
            NodeTest::Any
        } else {
            NodeTest::Tag(self.parse_name()?)
        };
        let mut predicates = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("[") {
                let expr = self.parse_expr()?;
                self.skip_ws();
                if !self.eat("]") {
                    return Err(self.err("expected ']'"));
                }
                predicates.push(expr);
            } else {
                break;
            }
        }
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    fn parse_name(&mut self) -> Result<String, QueryParseError> {
        let start = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse_expr(&mut self) -> Result<Expr, QueryParseError> {
        let mut left = self.parse_and_expr()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("or") {
                let right = self.parse_and_expr()?;
                left = Expr::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_and_expr(&mut self) -> Result<Expr, QueryParseError> {
        let mut left = self.parse_unary()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("and") {
                let right = self.parse_unary()?;
                left = Expr::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, QueryParseError> {
        self.skip_ws();
        if self.eat_keyword("not") {
            self.skip_ws();
            if !self.eat("(") {
                return Err(self.err("expected '(' after not"));
            }
            let inner = self.parse_expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, QueryParseError> {
        self.skip_ws();
        if self.eat_keyword("contains") {
            let (path, lit) = self.parse_string_fn_args("contains")?;
            return Ok(Expr::Contains(path, lit));
        }
        if self.eat_keyword("starts-with") {
            let (path, lit) = self.parse_string_fn_args("starts-with")?;
            return Ok(Expr::StartsWith(path, lit));
        }
        if self.eat_keyword("some") {
            self.skip_ws();
            if !self.eat("$") {
                return Err(self.err("expected '$variable' after some"));
            }
            let var = self.parse_name()?;
            self.skip_ws();
            if !self.eat_keyword("in") {
                return Err(self.err("expected 'in'"));
            }
            let path = self.parse_relpath()?;
            self.skip_ws();
            if !self.eat_keyword("satisfies") {
                return Err(self.err("expected 'satisfies'"));
            }
            let saved = self.bound_var.replace(var);
            let cond = self.parse_expr()?;
            self.bound_var = saved;
            return Ok(Expr::Some {
                path,
                cond: Box::new(cond),
            });
        }
        let path = self.parse_relpath()?;
        self.skip_ws();
        // Two-character operators before their one-character prefixes.
        for (sym, op) in [
            ("!=", Some(CmpOp::Ne)),
            ("<=", Some(CmpOp::Le)),
            (">=", Some(CmpOp::Ge)),
            ("=", None),
            ("<", Some(CmpOp::Lt)),
            (">", Some(CmpOp::Gt)),
        ] {
            if self.eat(sym) {
                self.skip_ws();
                let lit = self.parse_literal_or_number()?;
                return Ok(match op {
                    None => Expr::Eq(path, lit),
                    Some(op) => Expr::Cmp(path, op, lit),
                });
            }
        }
        Ok(Expr::Exists(path))
    }

    /// `name(relpath, "literal")` argument lists of the string functions.
    fn parse_string_fn_args(&mut self, name: &str) -> Result<(RelPath, String), QueryParseError> {
        self.skip_ws();
        if !self.eat("(") {
            return Err(self.err(format!("expected '(' after {name}")));
        }
        let path = self.parse_relpath()?;
        self.skip_ws();
        if !self.eat(",") {
            return Err(self.err(format!("expected ',' in {name}")));
        }
        self.skip_ws();
        let lit = self.parse_literal()?;
        self.skip_ws();
        if !self.eat(")") {
            return Err(self.err("expected ')'"));
        }
        Ok((path, lit))
    }

    /// A quoted string, or a bare (possibly signed, possibly fractional)
    /// number — `[year >= 1995]` reads naturally without quotes.
    fn parse_literal_or_number(&mut self) -> Result<String, QueryParseError> {
        if matches!(self.peek(), Some(b'"' | b'\'')) {
            return self.parse_literal();
        }
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut seen_digit = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                seen_digit = true;
                self.pos += 1;
            } else if b == b'.' && seen_digit {
                self.pos += 1;
            } else {
                break;
            }
        }
        if !seen_digit {
            self.pos = start;
            return Err(self.err("expected a string or numeric literal"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse_relpath(&mut self) -> Result<RelPath, QueryParseError> {
        self.skip_ws();
        if self.eat("$") {
            let var = self.parse_name()?;
            match &self.bound_var {
                Some(bound) if *bound == var => return Ok(RelPath::self_path()),
                _ => {
                    return Err(self.err(format!("unbound variable ${var}")));
                }
            }
        }
        let mut steps = Vec::new();
        // Optional leading '.' (context node).
        let had_dot = self.eat(".");
        loop {
            self.skip_ws();
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else if steps.is_empty() && !had_dot {
                // Bare name: a single child step.
                let test = if self.eat("*") {
                    NodeTest::Any
                } else {
                    NodeTest::Tag(self.parse_name()?)
                };
                steps.push(Step {
                    axis: Axis::Child,
                    test,
                    predicates: Vec::new(),
                });
                continue;
            } else {
                break;
            };
            let step = self.parse_step(axis)?;
            steps.push(step);
        }
        if steps.is_empty() && !had_dot {
            return Err(self.err("expected a path"));
        }
        Ok(RelPath { steps })
    }

    fn parse_literal(&mut self) -> Result<String, QueryParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a string literal")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let s = self.src[start..self.pos].to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string literal"))
    }
}

/// Bytes allowed in names. `.` is deliberately excluded so that `x.//y`
/// style inputs fail loudly instead of parsing a dotted name.
fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_paths() {
        let q = parse_query("/catalog/movie/title").unwrap();
        assert_eq!(q.steps.len(), 3);
        assert_eq!(q.steps[0].axis, Axis::Child);
        assert_eq!(q.steps[0].test, NodeTest::Tag("catalog".into()));
        let q = parse_query("//title").unwrap();
        assert_eq!(q.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn parse_wildcard() {
        let q = parse_query("//movie/*").unwrap();
        assert_eq!(q.steps[1].test, NodeTest::Any);
    }

    #[test]
    fn parse_paper_query_one() {
        let q = parse_query("//movie[.//genre=\"Horror\"]/title").unwrap();
        assert_eq!(q.steps.len(), 2);
        let pred = &q.steps[0].predicates[0];
        match pred {
            Expr::Eq(path, lit) => {
                assert_eq!(lit, "Horror");
                assert_eq!(path.steps.len(), 1);
                assert_eq!(path.steps[0].axis, Axis::Descendant);
                assert_eq!(path.steps[0].test, NodeTest::Tag("genre".into()));
            }
            other => panic!("expected Eq, got {other:?}"),
        }
    }

    #[test]
    fn parse_paper_query_two() {
        let q =
            parse_query("//movie[some $d in .//director satisfies contains($d,\"John\")]/title")
                .unwrap();
        let pred = &q.steps[0].predicates[0];
        match pred {
            Expr::Some { path, cond } => {
                assert_eq!(path.steps[0].test, NodeTest::Tag("director".into()));
                match cond.as_ref() {
                    Expr::Contains(p, lit) => {
                        assert_eq!(lit, "John");
                        assert!(p.steps.is_empty(), "variable use is the self path");
                    }
                    other => panic!("expected Contains, got {other:?}"),
                }
            }
            other => panic!("expected Some, got {other:?}"),
        }
    }

    #[test]
    fn parse_boolean_combinations() {
        let q = parse_query("//movie[genre=\"Horror\" and not(year=\"1975\") or title]").unwrap();
        match &q.steps[0].predicates[0] {
            Expr::Or(left, right) => {
                assert!(matches!(left.as_ref(), Expr::And(_, _)));
                assert!(matches!(right.as_ref(), Expr::Exists(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parse_bare_name_predicate_is_child_path() {
        let q = parse_query("//movie[genre=\"Horror\"]").unwrap();
        match &q.steps[0].predicates[0] {
            Expr::Eq(path, _) => {
                assert_eq!(path.steps[0].axis, Axis::Child);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_single_quoted_literal() {
        let q = parse_query("//movie[genre='Horror']").unwrap();
        assert!(matches!(&q.steps[0].predicates[0], Expr::Eq(_, lit) if lit == "Horror"));
    }

    #[test]
    fn parse_multiple_predicates() {
        let q = parse_query("//movie[genre=\"Horror\"][year=\"1975\"]/title").unwrap();
        assert_eq!(q.steps[0].predicates.len(), 2);
    }

    #[test]
    fn parse_comparison_operators() {
        for (src, op) in [
            ("//movie[year != \"1995\"]", CmpOp::Ne),
            ("//movie[year < 1995]", CmpOp::Lt),
            ("//movie[year <= 1995]", CmpOp::Le),
            ("//movie[year > 1995]", CmpOp::Gt),
            ("//movie[year >= 1995]", CmpOp::Ge),
        ] {
            let q = parse_query(src).unwrap();
            match &q.steps[0].predicates[0] {
                Expr::Cmp(_, parsed, lit) => {
                    assert_eq!(*parsed, op, "{src}");
                    assert_eq!(lit, "1995");
                }
                other => panic!("{src}: expected Cmp, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_numeric_literals() {
        let q = parse_query("//movie[rating >= 7.5]").unwrap();
        assert!(matches!(&q.steps[0].predicates[0], Expr::Cmp(_, _, lit) if lit == "7.5"));
        let q = parse_query("//sensor[delta > -3]").unwrap();
        assert!(matches!(&q.steps[0].predicates[0], Expr::Cmp(_, _, lit) if lit == "-3"));
        // '=' still accepts numbers too.
        let q = parse_query("//movie[year = 1995]").unwrap();
        assert!(matches!(&q.steps[0].predicates[0], Expr::Eq(_, lit) if lit == "1995"));
    }

    #[test]
    fn parse_starts_with() {
        let q = parse_query("//movie[starts-with(title, \"Die Hard\")]/year").unwrap();
        match &q.steps[0].predicates[0] {
            Expr::StartsWith(path, lit) => {
                assert_eq!(path.steps[0].test, NodeTest::Tag("title".into()));
                assert_eq!(lit, "Die Hard");
            }
            other => panic!("expected StartsWith, got {other:?}"),
        }
        // An element genuinely called starts-with-x still parses as a path.
        let q = parse_query("//movie[starts-with-x]").unwrap();
        assert!(matches!(&q.steps[0].predicates[0], Expr::Exists(_)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("").is_err());
        assert!(parse_query("movie/title").is_err()); // not absolute
        assert!(parse_query("//movie[").is_err());
        assert!(parse_query("//movie[genre=]").is_err());
        assert!(parse_query("//movie]").is_err());
        assert!(parse_query("//movie[$x]").is_err()); // unbound variable
        assert!(parse_query("//movie[contains(title \"x\")]").is_err());
        assert!(
            parse_query("//movie[some $d in .//director satisfies contains($e,\"x\")]").is_err()
        ); // wrong variable
    }

    #[test]
    fn keywords_do_not_swallow_names() {
        // An element called "order" starts with keyword "or".
        let q = parse_query("//order[notes=\"x\"]").unwrap();
        assert_eq!(q.steps[0].test, NodeTest::Tag("order".into()));
        assert!(matches!(&q.steps[0].predicates[0], Expr::Eq(p, _)
            if p.steps[0].test == NodeTest::Tag("notes".into())));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let q = parse_query("  //movie[ .//genre = \"Horror\" ] / title ").unwrap();
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.to_string(), "//movie[.//genre=\"Horror\"]/title");
    }
}
