//! Compile-then-execute query pipeline: [`QueryPlan`].
//!
//! The one-shot [`crate::eval_px`] API re-derives everything on every
//! call. A [`QueryPlan`] separates the *plan* from its *execution* (as
//! uncertainty-aware query systems typically do, so pruning and caching
//! can live in the plan layer):
//!
//! * **compile** — logical step normalization (collapsing redundant
//!   `//*`-chain traversals, deduplicating predicates) followed by a
//!   physical operator chain in which value-test predicates are hoisted
//!   into dedicated value-scan operators;
//! * **execute** — a lazy [`crate::AnswerStream`] that yields typed
//!   [`crate::Answer`]s one at a time, computing each answer's exact
//!   probability on demand with a per-execution memo table, and —
//!   when the plan carries a [`min_probability`](QueryPlan::with_min_probability)
//!   threshold — pruning answers whose event probability *bound* already
//!   falls below the threshold before any exact probability is computed.
//!
//! ```
//! use imprecise_query::QueryPlan;
//! use imprecise_pxml::from_xml;
//! use imprecise_xmlkit::parse;
//!
//! let doc = from_xml(&parse(
//!     "<catalog><movie><title>Jaws</title><genre>Horror</genre></movie></catalog>",
//! ).unwrap());
//! let plan = QueryPlan::parse("//movie[genre=\"Horror\"]/title")
//!     .unwrap()
//!     .with_min_probability(0.5);
//! let answers: Vec<_> = plan.execute(&doc).unwrap().collect();
//! assert_eq!(answers.len(), 1);
//! assert_eq!(answers[0].value.as_str(), "Jaws");
//! assert_eq!(answers[0].probability, 1.0);
//! ```

use crate::answer::RankedAnswers;
use crate::ast::{Axis, CmpOp, Expr, NodeTest, Query, RelPath, Step};
use crate::event::Event;
use crate::parse::{parse_query, QueryParseError};
use crate::px_eval::{ContextMerger, EvalError, Evaluator};
use crate::stream::AnswerStream;
use imprecise_pxml::{PxDoc, PxNodeId};
use std::fmt;

/// A hoisted value test: the comparison half of predicates like
/// `genre = "Horror"` or `year >= 1995`, compiled out of the expression
/// tree so the executor applies it as a direct value scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ValueTest {
    /// `path = "literal"`.
    Eq(String),
    /// `path OP literal` for the ordering/inequality operators.
    Cmp(CmpOp, String),
    /// `contains(path, "literal")`.
    Contains(String),
    /// `starts-with(path, "literal")`.
    StartsWith(String),
}

impl ValueTest {
    fn holds(&self, value: &str) -> bool {
        match self {
            ValueTest::Eq(lit) => value == lit,
            ValueTest::Cmp(op, lit) => op.holds(value, lit),
            ValueTest::Contains(lit) => value.contains(lit.as_str()),
            ValueTest::StartsWith(lit) => value.starts_with(lit.as_str()),
        }
    }

    fn symbol(&self) -> String {
        match self {
            ValueTest::Eq(lit) => format!("= {lit:?}"),
            ValueTest::Cmp(op, lit) => format!("{} {lit:?}", op.symbol()),
            ValueTest::Contains(lit) => format!("contains {lit:?}"),
            ValueTest::StartsWith(lit) => format!("starts-with {lit:?}"),
        }
    }
}

/// One compiled predicate of a physical step.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CompiledPred {
    /// A hoisted value test `path OP literal`, executed as a value scan.
    Value {
        /// The relative path selecting the tested nodes.
        path: RelPath,
        /// The test applied to each possible value.
        test: ValueTest,
    },
    /// Any other predicate, executed by the general expression machinery.
    General(Expr),
}

impl CompiledPred {
    fn compile(expr: &Expr) -> Self {
        match expr {
            Expr::Eq(path, lit) => CompiledPred::Value {
                path: path.clone(),
                test: ValueTest::Eq(lit.clone()),
            },
            Expr::Cmp(path, op, lit) => CompiledPred::Value {
                path: path.clone(),
                test: ValueTest::Cmp(*op, lit.clone()),
            },
            Expr::Contains(path, lit) => CompiledPred::Value {
                path: path.clone(),
                test: ValueTest::Contains(lit.clone()),
            },
            Expr::StartsWith(path, lit) => CompiledPred::Value {
                path: path.clone(),
                test: ValueTest::StartsWith(lit.clone()),
            },
            other => CompiledPred::General(other.clone()),
        }
    }
}

impl fmt::Display for CompiledPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompiledPred::Value { path, test } => {
                write!(f, "ValueScan({path} {})", test.symbol())
            }
            CompiledPred::General(expr) => write!(f, "Filter({expr})"),
        }
    }
}

/// One physical operator: an axis scan plus its compiled predicates.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StepOp {
    pub(crate) axis: Axis,
    pub(crate) test: NodeTest,
    pub(crate) preds: Vec<CompiledPred>,
}

impl fmt::Display for StepOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let scan = match self.axis {
            Axis::Child => "ChildScan",
            Axis::Descendant => "SubtreeScan",
        };
        write!(f, "{scan}({})", self.test)?;
        for p in &self.preds {
            write!(f, " where {p}")?;
        }
        Ok(())
    }
}

/// A compiled query: normalized logical steps lowered to a physical
/// operator chain, plus an optional probability threshold that is pushed
/// down into execution.
///
/// Plans are immutable and cheap to clone; compile once, execute against
/// any number of documents. [`execute`](Self::execute) returns a lazy
/// [`AnswerStream`]; [`collect`](Self::collect) is the eager adapter
/// producing the classic [`RankedAnswers`].
///
/// ```
/// use imprecise_query::{eval_px, parse_query, QueryPlan};
/// use imprecise_pxml::from_xml;
/// use imprecise_xmlkit::parse;
///
/// let doc = from_xml(&parse("<catalog><movie><title>Jaws</title></movie></catalog>").unwrap());
/// let query = parse_query("//movie/title").unwrap();
/// let plan = QueryPlan::compile(&query);
/// // At threshold 0 the plan reproduces eval_px exactly.
/// assert_eq!(plan.collect(&doc).unwrap(), eval_px(&doc, &query).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The original query (pre-normalization), kept for display and for
    /// layers that need the AST (e.g. feedback conditioning).
    source: Query,
    /// The physical operator chain over the normalized steps.
    ops: Vec<StepOp>,
    /// Human-readable log of the logical rewrites that were applied.
    rewrites: Vec<String>,
    /// Answers whose probability falls below this are not produced; the
    /// executor prunes candidates whose probability *upper bound* is
    /// already below it before computing any exact probability.
    min_probability: f64,
}

impl QueryPlan {
    /// Compile a parsed query into a plan (threshold 0: keep every
    /// answer with non-zero probability, like [`crate::eval_px`]).
    pub fn compile(query: &Query) -> Self {
        let (steps, rewrites) = normalize(&query.steps);
        let ops = steps
            .iter()
            .map(|s| StepOp {
                axis: s.axis,
                test: s.test.clone(),
                preds: s.predicates.iter().map(CompiledPred::compile).collect(),
            })
            .collect();
        QueryPlan {
            source: query.clone(),
            ops,
            rewrites,
            min_probability: 0.0,
        }
    }

    /// Parse and compile in one call.
    pub fn parse(text: &str) -> Result<Self, QueryParseError> {
        Ok(Self::compile(&parse_query(text)?))
    }

    /// Push a probability threshold down into execution: answers whose
    /// probability is below `threshold` are skipped, and candidates
    /// whose probability *bound* is already below it are pruned before
    /// the exact probability is ever computed. The threshold is clamped
    /// to `[0, 1]`; `NaN` is treated as 0.
    #[must_use]
    pub fn with_min_probability(mut self, threshold: f64) -> Self {
        self.min_probability = sanitize_threshold(threshold);
        self
    }

    /// The pushed-down probability threshold (0 when none was set).
    pub fn min_probability(&self) -> f64 {
        self.min_probability
    }

    /// The original (pre-normalization) query.
    pub fn source(&self) -> &Query {
        &self.source
    }

    /// The logical rewrites compilation applied (empty for most queries).
    pub fn rewrites(&self) -> &[String] {
        &self.rewrites
    }

    /// Number of physical operators in the chain.
    pub fn operator_count(&self) -> usize {
        self.ops.len()
    }

    /// Execute against a document, returning the lazy answer stream.
    ///
    /// Answer *events* are derived eagerly (errors surface here); each
    /// answer's exact probability is computed lazily as the stream is
    /// consumed, so taking only the first `k` answers pays for `k`
    /// Shannon expansions. The stream owns everything it needs — it does
    /// not borrow the document.
    pub fn execute(&self, doc: &PxDoc) -> Result<AnswerStream, EvalError> {
        self.execute_at(doc, self.min_probability)
    }

    /// [`execute`](Self::execute) with a per-call threshold override
    /// (same pushdown semantics and sanitization as
    /// [`with_min_probability`](Self::with_min_probability)) — for
    /// callers that reuse one compiled plan across many thresholds
    /// without cloning it.
    pub fn execute_at(&self, doc: &PxDoc, min_probability: f64) -> Result<AnswerStream, EvalError> {
        let events = self.answer_events(doc)?;
        Ok(AnswerStream::new(
            doc.choice_weights(),
            events,
            sanitize_threshold(min_probability),
        ))
    }

    /// Execute and collect into ranked answers (the compatibility
    /// adapter: at threshold 0 this equals [`crate::eval_px`] exactly).
    pub fn collect(&self, doc: &PxDoc) -> Result<RankedAnswers, EvalError> {
        Ok(self.execute(doc)?.into_ranked())
    }

    /// The amalgamated (value, event) pairs of this plan on `doc`, in
    /// document order — the input the stream ranks and filters.
    pub(crate) fn answer_events(&self, doc: &PxDoc) -> Result<Vec<(String, Event)>, EvalError> {
        let mut eval = Evaluator::new(doc);
        let mut current: Vec<(Option<PxNodeId>, Event)> = vec![(None, Event::True)];
        for op in &self.ops {
            let mut merger = ContextMerger::new();
            for (ctx, ctx_event) in current {
                for (node, ev) in apply_op(&mut eval, ctx, &ctx_event, op)? {
                    merger.add(node, ev);
                }
            }
            current = merger.into_optional_contexts();
        }
        eval.amalgamate(current)
    }
}

/// Clamp a caller-supplied threshold to `[0, 1]` (`NaN` → 0).
fn sanitize_threshold(threshold: f64) -> f64 {
    if threshold.is_nan() {
        0.0
    } else {
        threshold.clamp(0.0, 1.0)
    }
}

/// Apply one physical operator from a context node.
fn apply_op(
    eval: &mut Evaluator<'_>,
    ctx: Option<PxNodeId>,
    ctx_event: &Event,
    op: &StepOp,
) -> Result<Vec<(PxNodeId, Event)>, EvalError> {
    let found = eval.collect_step_nodes(ctx, op.axis, &op.test);
    let mut out = Vec::with_capacity(found.len());
    for (node, local_event) in found {
        let mut ev = Event::and(ctx_event.clone(), local_event);
        for pred in &op.preds {
            if matches!(ev, Event::False) {
                break;
            }
            let pe = match pred {
                CompiledPred::Value { path, test } => {
                    eval.path_value_event(node, path, |v| test.holds(v))?
                }
                CompiledPred::General(expr) => eval.eval_expr_event(node, expr)?,
            };
            ev = Event::and(ev, pe);
        }
        if !matches!(ev, Event::False) {
            out.push((node, ev));
        }
    }
    Ok(out)
}

/// Logical normalization: rewrite the step chain into an equivalent one
/// that is cheaper to execute, logging every rewrite.
///
/// Rules (each preserves the selected node set — and therefore every
/// existence event — in every possible world):
///
/// 1. **`//*`-chain collapse.** In `…//*//x…`, the second descendant
///    walk is redundant: any element that is a strict descendant of some
///    element is equally a *child* of some element, so the follow-up
///    step relaxes to a child scan (`//*/x`). A subtree walk per context
///    becomes a single child scan.
/// 2. **Duplicate predicate elimination.** Structurally identical
///    predicates within one step hold or fail together; only the first
///    is kept.
fn normalize(steps: &[Step]) -> (Vec<Step>, Vec<String>) {
    let mut steps = steps.to_vec();
    let mut rewrites = Vec::new();
    for i in 0..steps.len().saturating_sub(1) {
        let collapsible = steps[i].axis == Axis::Descendant
            && steps[i].test == NodeTest::Any
            && steps[i].predicates.is_empty()
            && steps[i + 1].axis == Axis::Descendant;
        if collapsible {
            steps[i + 1].axis = Axis::Child;
            rewrites.push(format!(
                "collapsed //* chain: step {} `//{}` relaxed to `/{}` (a strict descendant \
                 of some element is a child of some element)",
                i + 2,
                steps[i + 1].test,
                steps[i + 1].test,
            ));
        }
    }
    for (i, step) in steps.iter_mut().enumerate() {
        let before = step.predicates.len();
        let mut seen: Vec<Expr> = Vec::new();
        step.predicates.retain(|p| {
            if seen.contains(p) {
                false
            } else {
                seen.push(p.clone());
                true
            }
        });
        if step.predicates.len() < before {
            rewrites.push(format!(
                "step {}: dropped {} duplicate predicate(s)",
                i + 1,
                before - step.predicates.len()
            ));
        }
    }
    (steps, rewrites)
}

impl fmt::Display for QueryPlan {
    /// The `imprecise explain` rendering: source, rewrites, operators.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan for {}", self.source)?;
        if self.min_probability > 0.0 {
            writeln!(
                f,
                "  threshold: {} (pushed down: candidates with probability bound below \
                 it are pruned before exact probability computation)",
                self.min_probability
            )?;
        } else {
            writeln!(f, "  threshold: none (keep every non-zero answer)")?;
        }
        if self.rewrites.is_empty() {
            writeln!(f, "  logical rewrites: none")?;
        } else {
            writeln!(f, "  logical rewrites:")?;
            for r in &self.rewrites {
                writeln!(f, "    - {r}")?;
            }
        }
        writeln!(f, "  physical operators:")?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "    {}: {op}", i + 1)?;
        }
        write!(
            f,
            "    {}: Amalgamate -> rank by exact probability (memoized Shannon expansion)",
            self.ops.len() + 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval_px;
    use crate::naive::eval_px_naive;

    fn movie_doc() -> PxDoc {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m1 = px.add_elem(cat, "movie");
        px.add_text_elem(m1, "title", "Jaws");
        px.add_text_elem(m1, "genre", "Horror");
        let c = px.add_prob(cat);
        let yes = px.add_poss(c, 0.3);
        let m2 = px.add_elem(yes, "movie");
        px.add_text_elem(m2, "title", "Jaws 2");
        px.add_text_elem(m2, "genre", "Horror");
        px.add_poss(c, 0.7);
        px
    }

    #[test]
    fn plan_collect_equals_eval_px_exactly() {
        let px = movie_doc();
        for q in [
            "//movie/title",
            "//movie[genre=\"Horror\"]/title",
            "//movie[not(genre=\"Horror\")]/title",
            "//movie[contains(title,\"2\")]/title",
            "//title",
            "/catalog/movie/title",
        ] {
            let query = parse_query(q).unwrap();
            let plan = QueryPlan::compile(&query);
            let planned = plan.collect(&px).unwrap();
            let classic = eval_px(&px, &query).unwrap();
            assert_eq!(planned.items, classic.items, "query {q}");
        }
    }

    #[test]
    fn threshold_filters_low_probability_answers() {
        let px = movie_doc();
        let plan = QueryPlan::parse("//movie/title")
            .unwrap()
            .with_min_probability(0.5);
        let answers = plan.collect(&px).unwrap();
        assert_eq!(answers.len(), 1);
        assert!((answers.probability_of("Jaws") - 1.0).abs() < 1e-12);
        assert_eq!(answers.probability_of("Jaws 2"), 0.0);
    }

    #[test]
    fn star_chain_collapses_and_stays_equivalent() {
        let px = movie_doc();
        for q in ["//*//title", "//*//*//title", "//*//movie/title"] {
            let query = parse_query(q).unwrap();
            let plan = QueryPlan::compile(&query);
            assert!(
                !plan.rewrites().is_empty(),
                "{q} should trigger the //* collapse"
            );
            let planned = plan.collect(&px).unwrap();
            let naive = eval_px_naive(&px, &query, 10_000).unwrap();
            assert_eq!(planned.len(), naive.len(), "query {q}");
            for item in &naive.items {
                assert!(
                    (planned.probability_of(&item.value) - item.probability).abs() < 1e-9,
                    "query {q}, value {}",
                    item.value
                );
            }
        }
    }

    #[test]
    fn duplicate_predicates_are_dropped() {
        let single = parse_query("//movie[genre=\"Horror\"]/title").unwrap();
        // Duplicate the predicate inside the first step: the rewrite
        // must collapse the plan back to the single-predicate one.
        let mut dup = single.clone();
        let pred = dup.steps[0].predicates[0].clone();
        dup.steps[0].predicates.push(pred);
        let plan = QueryPlan::compile(&dup);
        assert_eq!(plan.ops[0].preds.len(), 1);
        assert!(plan.rewrites().iter().any(|r| r.contains("duplicate")));
        let px = movie_doc();
        let planned = plan.collect(&px).unwrap();
        let classic = eval_px(&px, &single).unwrap();
        assert_eq!(planned.items, classic.items);
    }

    #[test]
    fn value_tests_are_hoisted() {
        let plan = QueryPlan::parse("//movie[genre=\"Horror\"][year >= 1995]/title").unwrap();
        assert!(plan.ops[0]
            .preds
            .iter()
            .all(|p| matches!(p, CompiledPred::Value { .. })));
        let general = QueryPlan::parse("//movie[not(genre=\"X\")]/title").unwrap();
        assert!(matches!(general.ops[0].preds[0], CompiledPred::General(_)));
    }

    #[test]
    fn explain_rendering_names_operators() {
        let plan = QueryPlan::parse("//movie[genre=\"Horror\"]/title")
            .unwrap()
            .with_min_probability(0.5);
        let text = plan.to_string();
        assert!(text.contains("SubtreeScan(movie)"), "{text}");
        assert!(text.contains("ValueScan"), "{text}");
        assert!(text.contains("ChildScan(title)"), "{text}");
        assert!(text.contains("threshold: 0.5"), "{text}");
        assert!(text.contains("Amalgamate"), "{text}");
    }

    #[test]
    fn threshold_is_sanitized() {
        let plan = QueryPlan::parse("//a").unwrap();
        assert_eq!(
            plan.clone().with_min_probability(-3.0).min_probability(),
            0.0
        );
        assert_eq!(
            plan.clone().with_min_probability(7.0).min_probability(),
            1.0
        );
        assert_eq!(plan.with_min_probability(f64::NAN).min_probability(), 0.0);
    }
}
