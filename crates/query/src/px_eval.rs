//! Exact probabilistic query evaluation over the compact representation.
//!
//! Instead of enumerating worlds, the evaluator walks the probabilistic
//! tree once, carrying for every intermediate node the [`Event`] under
//! which that node exists in a world. Predicates evaluate to events too.
//! The answer probability of a value is the exact probability of the
//! disjunction of all its occurrence events, computed by Shannon
//! expansion ([`crate::event::probability`]).
//!
//! This is the paper's "amalgamated answer" — merged over worlds, ranked
//! by likelihood — computed without touching worlds.
//!
//! The walk itself lives in a per-execution `Evaluator` context that
//! memoizes each node's `value_events` so predicates and amalgamation
//! never recompute the value distribution of the same subtree twice.
//! [`eval_px`] drives it for the one-shot API; the planned, streaming
//! API ([`crate::QueryPlan`] / [`crate::AnswerStream`]) drives the same
//! walk over a normalized step chain with threshold pushdown on top.

use crate::answer::RankedAnswers;
use crate::ast::{Axis, Expr, NodeTest, Query, RelPath, Step};
use crate::event::{probability, ChoiceAtom, Event};
use imprecise_pxml::{PxDoc, PxNodeId, PxNodeKind};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Cap on the number of distinct string values one element may take
/// across worlds (guards `value_events` against pathological nesting).
const MAX_VALUE_VARIANTS: usize = 4096;

/// Probabilistic evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An element's string value takes too many distinct forms.
    TooManyValueVariants {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TooManyValueVariants { cap } => {
                write!(f, "an element's value takes more than {cap} distinct forms")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The event "`value` occurs in the query answer", or `None` when the
/// value cannot occur in any world. Used by the feedback layer to
/// condition a document on user confirmation/rejection of an answer.
pub fn answer_event(doc: &PxDoc, query: &Query, value: &str) -> Result<Option<Event>, EvalError> {
    let events = answer_events(doc, query)?;
    // lint:allow(hash-iteration, false positive: this events is the Vec from answer_events in document order, not the evaluator hash map, and find is a keyed lookup)
    Ok(events.into_iter().find(|(v, _)| v == value).map(|(_, e)| e))
}

/// The events of all possible answer values (unranked, document order).
pub fn answer_events(doc: &PxDoc, query: &Query) -> Result<Vec<(String, Event)>, EvalError> {
    Evaluator::new(doc).collect_answer_events(&query.steps)
}

/// Evaluate a query over a probabilistic document; returns ranked answers.
///
/// This is the one-shot, unplanned API: events are rebuilt and every
/// answer's probability is computed on every call. When the same query
/// runs more than once, or only answers above a threshold are wanted,
/// prefer compiling a [`crate::QueryPlan`] and streaming.
pub fn eval_px(doc: &PxDoc, query: &Query) -> Result<RankedAnswers, EvalError> {
    let events = answer_events(doc, query)?;
    let mut pairs = Vec::with_capacity(events.len());
    // lint:allow(hash-iteration, false positive: this events is the Vec from answer_events in document order, not the evaluator hash map)
    for (value, ev) in events {
        let p = probability(doc, &ev);
        if p > 0.0 {
            pairs.push((value, p));
        }
    }
    Ok(RankedAnswers::from_pairs(pairs))
}

/// One query execution over one document: the step-walk machinery plus a
/// per-execution memo of each node's value events.
///
/// The memo is sound because a node's value distribution depends only on
/// the (immutable) document; it pays off because predicates and the final
/// amalgamation frequently revisit the same nodes through different
/// contexts.
pub(crate) struct Evaluator<'d> {
    doc: &'d PxDoc,
    values: HashMap<PxNodeId, Rc<Vec<(String, Event)>>>,
}

impl<'d> Evaluator<'d> {
    pub(crate) fn new(doc: &'d PxDoc) -> Self {
        Evaluator {
            doc,
            values: HashMap::new(),
        }
    }

    /// Walk `steps` from the virtual document node and amalgamate: every
    /// result node contributes each of its possible string values under
    /// (existence ∧ value) events. Returns (value, event) pairs in
    /// document order of first occurrence.
    pub(crate) fn collect_answer_events(
        &mut self,
        steps: &[Step],
    ) -> Result<Vec<(String, Event)>, EvalError> {
        let current = self.step_contexts(steps)?;
        self.amalgamate(current)
    }

    /// Amalgamate a final context set into (value, event) pairs in
    /// document order of first occurrence.
    pub(crate) fn amalgamate(
        &mut self,
        contexts: Vec<(Option<PxNodeId>, Event)>,
    ) -> Result<Vec<(String, Event)>, EvalError> {
        let mut order: Vec<String> = Vec::new();
        let mut events: HashMap<String, Event> = HashMap::new();
        for (node, ctx_event) in contexts {
            // lint:allow(expect-in-lib, holds by construction: after ≥1 steps contexts are real nodes)
            let node = node.expect("after ≥1 steps contexts are real nodes");
            for (value, val_event) in self.value_events(node)?.iter() {
                let combined = Event::and(ctx_event.clone(), val_event.clone());
                match events.get_mut(value) {
                    Some(e) => {
                        let old = std::mem::replace(e, Event::False);
                        *e = Event::or(old, combined);
                    }
                    None => {
                        order.push(value.clone());
                        events.insert(value.clone(), combined);
                    }
                }
            }
        }
        Ok(order
            .into_iter()
            .map(|v| {
                // lint:allow(expect-in-lib, holds by construction: collected above)
                let e = events.remove(&v).expect("collected above");
                (v, e)
            })
            .collect())
    }

    /// Apply a step chain from the virtual document node, OR-merging the
    /// events of contexts reached along multiple derivations.
    fn step_contexts(
        &mut self,
        steps: &[Step],
    ) -> Result<Vec<(Option<PxNodeId>, Event)>, EvalError> {
        let mut current: Vec<(Option<PxNodeId>, Event)> = vec![(None, Event::True)];
        for step in steps {
            let mut merger = ContextMerger::new();
            for (ctx, ctx_event) in current {
                for (node, ev) in self.apply_step(ctx, ctx_event.clone(), step)? {
                    merger.add(node, ev);
                }
            }
            current = merger.into_optional_contexts();
        }
        Ok(current)
    }

    /// Apply one step from a context node (None = virtual document node).
    fn apply_step(
        &mut self,
        ctx: Option<PxNodeId>,
        ctx_event: Event,
        step: &Step,
    ) -> Result<Vec<(PxNodeId, Event)>, EvalError> {
        let found = self.collect_step_nodes(ctx, step.axis, &step.test);
        // Combine with the context's own existence event and the predicates.
        let mut out = Vec::with_capacity(found.len());
        for (node, local_event) in found {
            let mut ev = Event::and(ctx_event.clone(), local_event);
            for pred in &step.predicates {
                if matches!(ev, Event::False) {
                    break;
                }
                let pe = self.eval_expr_event(node, pred)?;
                ev = Event::and(ev, pe);
            }
            if !matches!(ev, Event::False) {
                out.push((node, ev));
            }
        }
        Ok(out)
    }

    /// The axis/test part of one step: nodes selected from a context
    /// (None = virtual document node) with their local existence events,
    /// before any context event or predicate is applied.
    pub(crate) fn collect_step_nodes(
        &self,
        ctx: Option<PxNodeId>,
        axis: Axis,
        test: &NodeTest,
    ) -> Vec<(PxNodeId, Event)> {
        let doc = self.doc;
        let mut found: Vec<(PxNodeId, Event)> = Vec::new();
        match ctx {
            None => match axis {
                Axis::Child => {
                    collect_top_elems(doc, doc.root(), Event::True, &mut |n, e| {
                        if test_matches(doc, n, test) {
                            found.push((n, e));
                        }
                    });
                }
                Axis::Descendant => {
                    collect_descendant_elems(doc, doc.root(), Event::True, &mut |n, e| {
                        if test_matches(doc, n, test) {
                            found.push((n, e));
                        }
                    });
                }
            },
            Some(e) => match axis {
                Axis::Child => {
                    for &c in doc.children(e) {
                        collect_items(doc, c, Event::True, &mut |n, ev| {
                            if doc.is_elem(n) && test_matches(doc, n, test) {
                                found.push((n, ev));
                            }
                        });
                    }
                }
                Axis::Descendant => {
                    for &c in doc.children(e) {
                        collect_descendant_elems(doc, c, Event::True, &mut |n, ev| {
                            if test_matches(doc, n, test) {
                                found.push((n, ev));
                            }
                        });
                    }
                }
            },
        }
        found
    }

    /// Evaluate a predicate to the event "the predicate holds", with
    /// `ctx` as context node. Events are relative to `ctx`'s own
    /// existence (they only mention choice points at or below the places
    /// the expression inspects).
    pub(crate) fn eval_expr_event(
        &mut self,
        ctx: PxNodeId,
        expr: &Expr,
    ) -> Result<Event, EvalError> {
        match expr {
            Expr::Exists(path) => {
                let nodes = self.eval_rel_events(ctx, path)?;
                Ok(Event::any(nodes.into_iter().map(|(_, e)| e)))
            }
            Expr::Eq(path, lit) => self.path_value_event(ctx, path, |v| v == lit.as_str()),
            Expr::Cmp(path, op, lit) => {
                self.path_value_event(ctx, path, |v| op.holds(v, lit.as_str()))
            }
            Expr::Contains(path, lit) => {
                self.path_value_event(ctx, path, |v| v.contains(lit.as_str()))
            }
            Expr::StartsWith(path, lit) => {
                self.path_value_event(ctx, path, |v| v.starts_with(lit.as_str()))
            }
            Expr::Some { path, cond } => {
                let nodes = self.eval_rel_events(ctx, path)?;
                let mut out = Event::False;
                for (n, e) in nodes {
                    let c = self.eval_expr_event(n, cond)?;
                    out = Event::or(out, Event::and(e, c));
                }
                Ok(out)
            }
            Expr::And(a, b) => Ok(Event::and(
                self.eval_expr_event(ctx, a)?,
                self.eval_expr_event(ctx, b)?,
            )),
            Expr::Or(a, b) => Ok(Event::or(
                self.eval_expr_event(ctx, a)?,
                self.eval_expr_event(ctx, b)?,
            )),
            Expr::Not(inner) => Ok(Event::not(self.eval_expr_event(ctx, inner)?)),
        }
    }

    /// The event "some node selected by `path` from `ctx` has a value
    /// satisfying `test`" (the shared body of every value predicate).
    pub(crate) fn path_value_event(
        &mut self,
        ctx: PxNodeId,
        path: &RelPath,
        test: impl Fn(&str) -> bool,
    ) -> Result<Event, EvalError> {
        let nodes = self.eval_rel_events(ctx, path)?;
        let mut out = Event::False;
        for (n, e) in nodes {
            let val = self.value_match_event(n, &test)?;
            out = Event::or(out, Event::and(e, val));
        }
        Ok(out)
    }

    /// Evaluate a relative path from `ctx`, returning nodes with the
    /// events under which the path reaches them.
    fn eval_rel_events(
        &mut self,
        ctx: PxNodeId,
        path: &RelPath,
    ) -> Result<Vec<(PxNodeId, Event)>, EvalError> {
        let mut current: Vec<(PxNodeId, Event)> = vec![(ctx, Event::True)];
        for step in &path.steps {
            let mut merger = ContextMerger::new();
            for (c, ce) in current {
                for (node, ev) in self.apply_step(Some(c), ce, step)? {
                    merger.add(node, ev);
                }
            }
            current = merger.into_contexts();
        }
        Ok(current)
    }

    /// The event "the string value of `node` satisfies `test`".
    fn value_match_event(
        &mut self,
        node: PxNodeId,
        test: impl Fn(&str) -> bool,
    ) -> Result<Event, EvalError> {
        let variants = self.value_events(node)?;
        Ok(Event::any(
            variants
                .iter()
                .filter(|(v, _)| test(v))
                .map(|(_, e)| e.clone()),
        ))
    }

    /// All possible string values of `node` with the events selecting
    /// them, memoized per execution (see [`value_events`] for the
    /// grouping semantics).
    pub(crate) fn value_events(
        &mut self,
        node: PxNodeId,
    ) -> Result<Rc<Vec<(String, Event)>>, EvalError> {
        if let Some(cached) = self.values.get(&node) {
            return Ok(Rc::clone(cached));
        }
        let computed = Rc::new(value_events(self.doc, node)?);
        self.values.insert(node, Rc::clone(&computed));
        Ok(computed)
    }
}

/// Per-step context merger: OR-merges the events of nodes reached
/// through several derivations, preserving first-encounter (document)
/// order. The single home of the merge logic the one-shot and planned
/// walks both rely on — they must never diverge.
pub(crate) struct ContextMerger {
    next: Vec<(PxNodeId, Event)>,
    index: HashMap<PxNodeId, usize>,
}

impl ContextMerger {
    pub(crate) fn new() -> Self {
        ContextMerger {
            next: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Record that `node` was reached under `ev` (disjoined with any
    /// earlier derivation's event).
    pub(crate) fn add(&mut self, node: PxNodeId, ev: Event) {
        match self.index.get(&node) {
            Some(&i) => {
                let old = std::mem::replace(&mut self.next[i].1, Event::False);
                self.next[i].1 = Event::or(old, ev);
            }
            None => {
                self.index.insert(node, self.next.len());
                self.next.push((node, ev));
            }
        }
    }

    /// The merged contexts, in first-encounter order.
    pub(crate) fn into_contexts(self) -> Vec<(PxNodeId, Event)> {
        self.next
    }

    /// As [`into_contexts`](Self::into_contexts), in the
    /// `Option`-wrapped shape the absolute-path walk threads through
    /// (only the pre-first-step virtual document context is `None`).
    pub(crate) fn into_optional_contexts(self) -> Vec<(Option<PxNodeId>, Event)> {
        self.next.into_iter().map(|(n, e)| (Some(n), e)).collect()
    }
}

fn test_matches(doc: &PxDoc, node: PxNodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Any => true,
        NodeTest::Tag(t) => doc.tag(node) == Some(t.as_str()),
    }
}

/// The atom for choosing possibility `idx` of `prob` — or `True` when the
/// choice point has a single possibility (a certain choice contributes no
/// uncertainty, and keeping it out of events preserves their
/// decomposability for the feedback layer).
fn atom_for(doc: &PxDoc, prob: PxNodeId, idx: usize) -> Event {
    if doc.children(prob).len() == 1 {
        Event::True
    } else {
        Event::Atom(ChoiceAtom {
            prob_node: prob,
            poss_index: idx as u32,
        })
    }
}

/// Visit the top-level *items* reachable from `node` without descending
/// into elements: the node itself if regular, or — for a choice point —
/// the top-level items of each possibility (with the atom conjoined).
fn collect_items(
    doc: &PxDoc,
    node: PxNodeId,
    event: Event,
    visit: &mut impl FnMut(PxNodeId, Event),
) {
    match doc.kind(node) {
        PxNodeKind::Prob => {
            for (idx, &poss) in doc.children(node).iter().enumerate() {
                let atom = atom_for(doc, node, idx);
                let ev = Event::and(event.clone(), atom);
                for &c in doc.children(poss) {
                    collect_items(doc, c, ev.clone(), visit);
                }
            }
        }
        // lint:allow(panic-in-lib, statically unreachable: poss visited outside its prob)
        PxNodeKind::Poss(_) => unreachable!("poss visited outside its prob"),
        _ => visit(node, event),
    }
}

/// Visit the top-level *element* items of a probability node (used for the
/// virtual document's children: the root choice's alternatives).
fn collect_top_elems(
    doc: &PxDoc,
    prob: PxNodeId,
    event: Event,
    visit: &mut impl FnMut(PxNodeId, Event),
) {
    collect_items(doc, prob, event, &mut |n, e| {
        if doc.is_elem(n) {
            visit(n, e);
        }
    });
}

/// Visit every descendant element below `node` (including `node` itself if
/// it is an element reached through choices), with existence events.
fn collect_descendant_elems(
    doc: &PxDoc,
    node: PxNodeId,
    event: Event,
    visit: &mut impl FnMut(PxNodeId, Event),
) {
    match doc.kind(node) {
        PxNodeKind::Prob => {
            for (idx, &poss) in doc.children(node).iter().enumerate() {
                let atom = atom_for(doc, node, idx);
                let ev = Event::and(event.clone(), atom);
                for &c in doc.children(poss) {
                    collect_descendant_elems(doc, c, ev.clone(), visit);
                }
            }
        }
        // lint:allow(panic-in-lib, statically unreachable: poss visited outside its prob)
        PxNodeKind::Poss(_) => unreachable!("poss visited outside its prob"),
        PxNodeKind::Elem { .. } => {
            visit(node, event.clone());
            for &c in doc.children(node) {
                collect_descendant_elems(doc, c, event.clone(), visit);
            }
        }
        PxNodeKind::Text(_) => {}
    }
}

/// All possible string values of `node` with the events selecting them.
///
/// Values are grouped (equal values' events are disjoined), so the result
/// has one entry per distinct possible value.
pub fn value_events(doc: &PxDoc, node: PxNodeId) -> Result<Vec<(String, Event)>, EvalError> {
    let raw = node_value_events(doc, node)?;
    let mut order: Vec<String> = Vec::new();
    let mut merged: HashMap<String, Event> = HashMap::new();
    for (v, e) in raw {
        match merged.get_mut(&v) {
            Some(existing) => {
                let old = std::mem::replace(existing, Event::False);
                *existing = Event::or(old, e);
            }
            None => {
                order.push(v.clone());
                merged.insert(v, e);
            }
        }
    }
    Ok(order
        .into_iter()
        .map(|v| {
            // lint:allow(expect-in-lib, holds by construction: inserted above)
            let e = merged.remove(&v).expect("inserted above");
            (v, e)
        })
        .collect())
}

fn node_value_events(doc: &PxDoc, node: PxNodeId) -> Result<Vec<(String, Event)>, EvalError> {
    match doc.kind(node) {
        PxNodeKind::Text(t) => Ok(vec![(t.clone(), Event::True)]),
        PxNodeKind::Elem { .. } => items_value_events(doc, doc.children(node)),
        PxNodeKind::Prob => {
            let mut out: Vec<(String, Event)> = Vec::new();
            for (idx, &poss) in doc.children(node).iter().enumerate() {
                let atom = atom_for(doc, node, idx);
                for (v, e) in items_value_events(doc, doc.children(poss))? {
                    out.push((v, Event::and(atom.clone(), e)));
                    if out.len() > MAX_VALUE_VARIANTS {
                        return Err(EvalError::TooManyValueVariants {
                            cap: MAX_VALUE_VARIANTS,
                        });
                    }
                }
            }
            Ok(out)
        }
        // lint:allow(panic-in-lib, statically unreachable: poss visited outside its prob)
        PxNodeKind::Poss(_) => unreachable!("poss visited outside its prob"),
    }
}

fn items_value_events(doc: &PxDoc, items: &[PxNodeId]) -> Result<Vec<(String, Event)>, EvalError> {
    let mut acc: Vec<(String, Event)> = vec![(String::new(), Event::True)];
    for &item in items {
        let parts = node_value_events(doc, item)?;
        if parts.len() == 1 {
            let (v, e) = &parts[0];
            for (av, ae) in &mut acc {
                av.push_str(v);
                if !matches!(e, Event::True) {
                    let old = std::mem::replace(ae, Event::False);
                    *ae = Event::and(old, e.clone());
                }
            }
            continue;
        }
        let mut next = Vec::with_capacity(acc.len() * parts.len());
        for (av, ae) in &acc {
            for (v, e) in &parts {
                let mut combined_v = av.clone();
                combined_v.push_str(v);
                let combined_e = Event::and(ae.clone(), e.clone());
                if !matches!(combined_e, Event::False) {
                    next.push((combined_v, combined_e));
                }
            }
        }
        acc = next;
        if acc.len() > MAX_VALUE_VARIANTS {
            return Err(EvalError::TooManyValueVariants {
                cap: MAX_VALUE_VARIANTS,
            });
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use imprecise_pxml::from_xml;
    use imprecise_xmlkit::parse;

    #[test]
    fn certain_document_matches_xml_eval() {
        let xml = parse(
            "<catalog><movie><title>Jaws</title><genre>Horror</genre></movie>\
             <movie><title>Heat</title><genre>Crime</genre></movie></catalog>",
        )
        .unwrap();
        let px = from_xml(&xml);
        let q = parse_query("//movie[genre=\"Horror\"]/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers.items[0].value, "Jaws");
        assert!((answers.items[0].probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncertain_movie_probability() {
        // Jaws 2 exists with p = 0.3.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m1 = px.add_elem(cat, "movie");
        px.add_text_elem(m1, "title", "Jaws");
        let c = px.add_prob(cat);
        let yes = px.add_poss(c, 0.3);
        let m2 = px.add_elem(yes, "movie");
        px.add_text_elem(m2, "title", "Jaws 2");
        px.add_poss(c, 0.7);
        let q = parse_query("//movie/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("Jaws") - 1.0).abs() < 1e-12);
        assert!((answers.probability_of("Jaws 2") - 0.3).abs() < 1e-12);
    }

    #[test]
    fn uncertain_value_splits_probability() {
        // One movie whose title is a 60/40 choice.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m = px.add_elem(cat, "movie");
        let t = px.add_elem(m, "title");
        let c = px.add_prob(t);
        let a = px.add_poss(c, 0.6);
        px.add_text(a, "Jaws");
        let b = px.add_poss(c, 0.4);
        px.add_text(b, "Jaws!");
        let q = parse_query("//movie/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("Jaws") - 0.6).abs() < 1e-12);
        assert!((answers.probability_of("Jaws!") - 0.4).abs() < 1e-12);
    }

    #[test]
    fn predicate_and_value_in_same_choice_are_correlated() {
        // A movie that is EITHER (genre Horror, title Jaws) OR (genre
        // Action, title Heat). P(title of Horror movie = Jaws) = 0.5 and
        // Heat must NOT appear in the Horror answer.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let c = px.add_prob(cat);
        let p1 = px.add_poss(c, 0.5);
        let m1 = px.add_elem(p1, "movie");
        px.add_text_elem(m1, "title", "Jaws");
        px.add_text_elem(m1, "genre", "Horror");
        let p2 = px.add_poss(c, 0.5);
        let m2 = px.add_elem(p2, "movie");
        px.add_text_elem(m2, "title", "Heat");
        px.add_text_elem(m2, "genre", "Action");
        let q = parse_query("//movie[genre=\"Horror\"]/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("Jaws") - 0.5).abs() < 1e-12);
        assert_eq!(answers.probability_of("Heat"), 0.0);
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn same_value_from_exclusive_worlds_adds() {
        // "Jaws" appears in both branches of a choice: P = 0.4 + 0.6 = 1.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let c = px.add_prob(cat);
        for (weight, extra) in [(0.4, "A"), (0.6, "B")] {
            let poss = px.add_poss(c, weight);
            let m = px.add_elem(poss, "movie");
            px.add_text_elem(m, "title", "Jaws");
            px.add_text_elem(m, "note", extra);
        }
        let q = parse_query("//movie/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("Jaws") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contains_predicate_over_uncertain_director() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m = px.add_elem(cat, "movie");
        px.add_text_elem(m, "title", "MI2");
        let d = px.add_elem(m, "director");
        let c = px.add_prob(d);
        let a = px.add_poss(c, 0.8);
        px.add_text(a, "John Woo");
        let b = px.add_poss(c, 0.2);
        px.add_text(b, "Woo Jon"); // no "John"
        let q =
            parse_query("//movie[some $d in .//director satisfies contains($d,\"John\")]/title")
                .unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("MI2") - 0.8).abs() < 1e-12);
    }

    #[test]
    fn not_predicate_is_exact() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m = px.add_elem(cat, "movie");
        px.add_text_elem(m, "title", "X");
        let g = px.add_elem(m, "genre");
        let c = px.add_prob(g);
        let a = px.add_poss(c, 0.25);
        px.add_text(a, "Horror");
        let b = px.add_poss(c, 0.75);
        px.add_text(b, "Action");
        let q = parse_query("//movie[not(genre=\"Horror\")]/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("X") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn numeric_comparison_over_uncertain_year() {
        // A movie whose year is 1994 (0.3) or 1996 (0.7): P(year >= 1995)
        // must be exactly the 1996 branch.
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m = px.add_elem(cat, "movie");
        px.add_text_elem(m, "title", "X");
        let y = px.add_elem(m, "year");
        let c = px.add_prob(y);
        let a = px.add_poss(c, 0.3);
        px.add_text(a, "1994");
        let b = px.add_poss(c, 0.7);
        px.add_text(b, "1996");
        let q = parse_query("//movie[year >= 1995]/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("X") - 0.7).abs() < 1e-12);
        let q = parse_query("//movie[year != 1996]/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("X") - 0.3).abs() < 1e-12);
    }

    #[test]
    fn starts_with_over_uncertain_title() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m = px.add_elem(cat, "movie");
        let t = px.add_elem(m, "title");
        let c = px.add_prob(t);
        let a = px.add_poss(c, 0.6);
        px.add_text(a, "Die Hard 2");
        let b = px.add_poss(c, 0.4);
        px.add_text(b, "Live Free or Die Hard");
        px.add_text_elem(m, "year", "1990");
        let q = parse_query("//movie[starts-with(title, \"Die Hard\")]/year").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!((answers.probability_of("1990") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_result_set() {
        let px = from_xml(&parse("<catalog/>").unwrap());
        let q = parse_query("//movie/title").unwrap();
        let answers = eval_px(&px, &q).unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn evaluator_memoizes_value_events() {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m = px.add_elem(cat, "movie");
        let t = px.add_text_elem(m, "title", "Jaws");
        let mut eval = Evaluator::new(&px);
        let first = eval.value_events(t).unwrap();
        let second = eval.value_events(t).unwrap();
        assert!(Rc::ptr_eq(&first, &second), "second lookup hits the memo");
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].0, "Jaws");
    }
}
