//! Lazy, threshold-aware answer streaming: [`AnswerStream`].
//!
//! A stream is produced by [`crate::QueryPlan::execute`]. It owns the
//! amalgamated answer *events* (document order) plus the document's
//! choice-weight table, and computes each answer's exact probability on
//! demand as the stream is consumed:
//!
//! * a per-execution [`ProbMemo`] caches the probability of each event
//!   the lazy iterator asks about, so re-asked (structurally identical)
//!   events are answered in one lookup;
//! * when the plan carries a probability threshold, candidates whose
//!   *probability bound* (a cheap structural computation, no expansion)
//!   is already below the threshold are pruned without ever computing an
//!   exact probability, and the remaining expansions abort
//!   branch-and-bound style once the threshold is out of reach — the
//!   paper's good-is-good-enough insight pushed into the evaluator.
//!
//! Collecting a stream with `collect::<RankedAnswers>()` reproduces the
//! classic eager API; at threshold 0 the result is identical to
//! [`crate::eval_px`].
//!
//! ```
//! use imprecise_query::{QueryPlan, RankedAnswers};
//! use imprecise_pxml::PxDoc;
//!
//! let mut px = PxDoc::new();
//! let w = px.add_poss(px.root(), 1.0);
//! let cat = px.add_elem(w, "catalog");
//! let m = px.add_elem(cat, "movie");
//! px.add_text_elem(m, "title", "Jaws");
//! px.add_text_elem(m, "year", "1975");
//!
//! let plan = QueryPlan::parse("//movie/year").unwrap();
//! let mut stream = plan.execute(&px).unwrap();
//! let answer = stream.next().unwrap();
//! assert_eq!(answer.value.as_str(), "1975");
//! assert_eq!(answer.value.as_number(), Some(1975.0)); // typed
//! assert_eq!(answer.probability, 1.0);
//! assert!(stream.next().is_none());
//! ```

use crate::answer::RankedAnswers;
use crate::event::{
    probability_above, probability_bounds, probability_memo, probability_weights, Event, ProbMemo,
    ABOVE_SLACK,
};
use imprecise_pxml::ChoiceWeights;
use std::fmt;
use std::sync::Arc;

/// A typed answer value: the answer's string form, with numeric values
/// recognized (the original text is always preserved).
#[derive(Debug, Clone)]
pub enum AnswerValue {
    /// Free text.
    Text(Arc<str>),
    /// A value whose text parses as a finite number (years, phone-free
    /// counts, ratings …).
    Number {
        /// The original text, exactly as it appears in the document.
        raw: Arc<str>,
        /// The parsed numeric value.
        value: f64,
    },
}

impl AnswerValue {
    /// Classify a raw string value.
    pub fn new(raw: impl Into<Arc<str>>) -> Self {
        let raw: Arc<str> = raw.into();
        match raw.trim().parse::<f64>() {
            Ok(value) if value.is_finite() && !raw.trim().is_empty() => {
                AnswerValue::Number { raw, value }
            }
            _ => AnswerValue::Text(raw),
        }
    }

    /// The value's text, exactly as it appears in the document.
    pub fn as_str(&self) -> &str {
        match self {
            AnswerValue::Text(raw) | AnswerValue::Number { raw, .. } => raw,
        }
    }

    /// The numeric value, when the text parses as a finite number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AnswerValue::Text(_) => None,
            AnswerValue::Number { value, .. } => Some(*value),
        }
    }
}

impl PartialEq for AnswerValue {
    /// Values compare by their text (the numeric classification is
    /// derived, not identity-bearing).
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Display for AnswerValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One streamed answer: a typed value, its exact probability, and the
/// event under which the value occurs (reusable for feedback
/// conditioning without re-deriving it).
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The answer value.
    pub value: AnswerValue,
    /// Exact probability that this value occurs in the query answer.
    pub probability: f64,
    /// The event "some occurrence of this value is in the result".
    pub event: Event,
}

/// Lazy iterator over a plan's answers; see the [module docs](self).
///
/// The stream owns everything it needs (events, weights, memo) — it
/// does not borrow the document, so it can outlive the snapshot
/// reference it was built from.
#[derive(Debug)]
pub struct AnswerStream {
    weights: ChoiceWeights,
    pending: std::vec::IntoIter<(String, Event)>,
    memo: ProbMemo,
    min_probability: f64,
    pruned_by_bound: usize,
    filtered_exact: usize,
}

impl AnswerStream {
    pub(crate) fn new(
        weights: ChoiceWeights,
        events: Vec<(String, Event)>,
        min_probability: f64,
    ) -> Self {
        AnswerStream {
            weights,
            pending: events.into_iter(),
            memo: ProbMemo::new(),
            min_probability,
            pruned_by_bound: 0,
            filtered_exact: 0,
        }
    }

    /// The threshold this stream executes under (0 when none).
    pub fn min_probability(&self) -> f64 {
        self.min_probability
    }

    /// Candidates pruned so far by the probability *bound* alone — their
    /// exact probability was never computed.
    pub fn pruned_by_bound(&self) -> usize {
        self.pruned_by_bound
    }

    /// Candidates the structural bound could not exclude, whose
    /// branch-and-bound expansion was then aborted mid-way (the
    /// threshold became unreachable) or whose exact probability fell
    /// below the threshold.
    pub fn filtered_exact(&self) -> usize {
        self.filtered_exact
    }

    /// Drain the stream into ranked answers. Equivalent to
    /// `collect::<RankedAnswers>()` but moves the value strings straight
    /// into the result instead of round-tripping them through
    /// [`AnswerValue`] — this is the hot path behind
    /// [`crate::QueryPlan::collect`] and [`crate::eval_px`]-compatible
    /// callers.
    pub fn into_ranked(mut self) -> RankedAnswers {
        let mut pairs = Vec::new();
        while let Some((value, event)) = self.pending.next() {
            // Drain-once path: distinct values rarely share identical
            // events, and the per-event clone + hash a memo insert costs
            // outweighs the occasional hit — use the uncached expansion.
            if let Some(p) = self.admit(&event, false) {
                pairs.push((value, p));
            }
        }
        RankedAnswers::from_pairs(pairs)
    }

    /// The shared threshold gate: `Some(probability)` when the event's
    /// answer survives, `None` when it is skipped. With a threshold the
    /// pipeline is structural bound → branch-and-bound expansion (which
    /// aborts as soon as the threshold is out of reach) → exact filter;
    /// without one, a plain exact expansion (memoized on the lazy path).
    /// Updates the pruning counters.
    fn admit(&mut self, event: &Event, memoize: bool) -> Option<f64> {
        if self.min_probability > 0.0 {
            // The bound's float arithmetic differs from the exact
            // expansion's, so prune only with slack: an answer whose
            // exact probability sits exactly at the threshold must never
            // be lost to one ulp of rounding in the bound.
            let (_, upper) = probability_bounds(&self.weights, event);
            if upper < self.min_probability - ABOVE_SLACK {
                self.pruned_by_bound += 1;
                return None;
            }
            let Some(p) = probability_above(&self.weights, event, self.min_probability) else {
                self.filtered_exact += 1;
                return None;
            };
            if p <= 0.0 {
                return None;
            }
            if p < self.min_probability {
                self.filtered_exact += 1;
                return None;
            }
            return Some(p);
        }
        let p = if memoize {
            probability_memo(&self.weights, event, &mut self.memo)
        } else {
            probability_weights(&self.weights, event)
        };
        if p > 0.0 {
            Some(p)
        } else {
            None
        }
    }
}

impl Iterator for AnswerStream {
    type Item = Answer;

    fn next(&mut self) -> Option<Answer> {
        while let Some((value, event)) = self.pending.next() {
            if let Some(p) = self.admit(&event, true) {
                return Some(Answer {
                    value: AnswerValue::new(value),
                    probability: p,
                    event,
                });
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.pending.len()))
    }
}

impl FromIterator<Answer> for RankedAnswers {
    /// Rank a stream's answers: stable sort by descending probability,
    /// ties staying in stream (document) order.
    fn from_iter<I: IntoIterator<Item = Answer>>(iter: I) -> Self {
        RankedAnswers::from_pairs(
            iter.into_iter()
                .map(|a| (a.value.as_str().to_string(), a.probability))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::QueryPlan;
    use imprecise_pxml::PxDoc;

    /// Jaws certain; Jaws 2 in 30% of worlds.
    fn doc() -> PxDoc {
        let mut px = PxDoc::new();
        let w = px.add_poss(px.root(), 1.0);
        let cat = px.add_elem(w, "catalog");
        let m1 = px.add_elem(cat, "movie");
        px.add_text_elem(m1, "title", "Jaws");
        let c = px.add_prob(cat);
        let yes = px.add_poss(c, 0.3);
        let m2 = px.add_elem(yes, "movie");
        px.add_text_elem(m2, "title", "Jaws 2");
        px.add_poss(c, 0.7);
        px
    }

    #[test]
    fn stream_yields_in_document_order_with_events() {
        let px = doc();
        let plan = QueryPlan::parse("//movie/title").unwrap();
        let answers: Vec<Answer> = plan.execute(&px).unwrap().collect();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].value.as_str(), "Jaws");
        assert_eq!(answers[0].event, Event::True);
        assert_eq!(answers[1].value.as_str(), "Jaws 2");
        assert!(matches!(answers[1].event, Event::Atom(_)));
        assert!((answers[1].probability - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bound_pruning_is_observable() {
        let px = doc();
        let plan = QueryPlan::parse("//movie/title")
            .unwrap()
            .with_min_probability(0.5);
        let mut stream = plan.execute(&px).unwrap();
        let got: Vec<Answer> = stream.by_ref().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_str(), "Jaws");
        // "Jaws 2" is a single 0.3 atom: the bound alone excludes it.
        assert_eq!(stream.pruned_by_bound(), 1);
        assert_eq!(stream.filtered_exact(), 0);
        assert_eq!(stream.min_probability(), 0.5);
    }

    #[test]
    fn typed_values_classify_numbers() {
        assert_eq!(AnswerValue::new("1975").as_number(), Some(1975.0));
        assert_eq!(AnswerValue::new(" 3.5 ").as_number(), Some(3.5));
        assert_eq!(AnswerValue::new("Jaws").as_number(), None);
        assert_eq!(AnswerValue::new("").as_number(), None);
        assert_eq!(AnswerValue::new("NaN").as_number(), None);
        assert_eq!(AnswerValue::new("inf").as_number(), None);
        // Equality is by text.
        assert_eq!(AnswerValue::new("1975"), AnswerValue::new("1975"));
        assert_ne!(AnswerValue::new("1975"), AnswerValue::new("1975.0"));
        assert_eq!(AnswerValue::new("1975").to_string(), "1975");
    }

    #[test]
    fn size_hint_shrinks_as_the_stream_drains() {
        let px = doc();
        let plan = QueryPlan::parse("//movie/title").unwrap();
        let mut stream = plan.execute(&px).unwrap();
        assert_eq!(stream.size_hint(), (0, Some(2)));
        stream.next();
        assert_eq!(stream.size_hint(), (0, Some(1)));
    }
}
