//! Query evaluation over certain (ordinary) XML documents.
//!
//! Also the world-level evaluator used by the naive possible-worlds
//! semantics: evaluate in every world separately, then amalgamate.

use crate::ast::{Axis, Expr, NodeTest, Query, RelPath, Step};
use imprecise_xmlkit::{NodeId, XmlDoc};

/// Evaluate an absolute query, returning matching nodes in document order
/// (without duplicates).
pub fn eval_xml(doc: &XmlDoc, query: &Query) -> Vec<NodeId> {
    // The virtual document node is represented by `None`.
    let mut current: Vec<Option<NodeId>> = vec![None];
    for step in &query.steps {
        let mut next: Vec<Option<NodeId>> = Vec::new();
        for ctx in current {
            for node in apply_step(doc, ctx, step) {
                if !next.contains(&Some(node)) {
                    next.push(Some(node));
                }
            }
        }
        current = next;
    }
    current.into_iter().flatten().collect()
}

/// String values of the query result, with per-document duplicates removed
/// (the amalgamated-answer semantics of §VI treats a value as "in the
/// answer" regardless of multiplicity).
pub fn eval_xml_values(doc: &XmlDoc, query: &Query) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for node in eval_xml(doc, query) {
        let v = doc.text_content(node);
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn apply_step(doc: &XmlDoc, ctx: Option<NodeId>, step: &Step) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = Vec::new();
    match (ctx, step.axis) {
        (None, Axis::Child) => {
            if test_matches(doc, doc.root(), &step.test) {
                nodes.push(doc.root());
            }
        }
        (None, Axis::Descendant) => {
            for n in doc.descendants(doc.root()) {
                if doc.is_element(n) && test_matches(doc, n, &step.test) {
                    nodes.push(n);
                }
            }
        }
        (Some(e), Axis::Child) => {
            for c in doc.child_elements(e) {
                if test_matches(doc, c, &step.test) {
                    nodes.push(c);
                }
            }
        }
        (Some(e), Axis::Descendant) => {
            for n in doc.descendants(e).skip(1) {
                if doc.is_element(n) && test_matches(doc, n, &step.test) {
                    nodes.push(n);
                }
            }
        }
    }
    nodes.retain(|&n| step.predicates.iter().all(|p| eval_expr(doc, n, p)));
    nodes
}

fn test_matches(doc: &XmlDoc, node: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Any => true,
        NodeTest::Tag(t) => doc.tag(node) == Some(t.as_str()),
    }
}

/// Evaluate a predicate expression with `ctx` as the context node.
pub fn eval_expr(doc: &XmlDoc, ctx: NodeId, expr: &Expr) -> bool {
    match expr {
        Expr::Exists(path) => !eval_rel(doc, ctx, path).is_empty(),
        Expr::Eq(path, lit) => eval_rel(doc, ctx, path)
            .iter()
            .any(|&n| doc.text_content(n) == *lit),
        Expr::Cmp(path, op, lit) => eval_rel(doc, ctx, path)
            .iter()
            .any(|&n| op.holds(&doc.text_content(n), lit)),
        Expr::Contains(path, lit) => eval_rel(doc, ctx, path)
            .iter()
            .any(|&n| doc.text_content(n).contains(lit.as_str())),
        Expr::StartsWith(path, lit) => eval_rel(doc, ctx, path)
            .iter()
            .any(|&n| doc.text_content(n).starts_with(lit.as_str())),
        Expr::Some { path, cond } => eval_rel(doc, ctx, path)
            .iter()
            .any(|&n| eval_expr(doc, n, cond)),
        Expr::And(a, b) => eval_expr(doc, ctx, a) && eval_expr(doc, ctx, b),
        Expr::Or(a, b) => eval_expr(doc, ctx, a) || eval_expr(doc, ctx, b),
        Expr::Not(inner) => !eval_expr(doc, ctx, inner),
    }
}

/// Evaluate a relative path from a context node.
pub fn eval_rel(doc: &XmlDoc, ctx: NodeId, path: &RelPath) -> Vec<NodeId> {
    let mut current: Vec<NodeId> = vec![ctx];
    for step in &path.steps {
        let mut next: Vec<NodeId> = Vec::new();
        for c in current {
            for node in apply_step(doc, Some(c), step) {
                if !next.contains(&node) {
                    next.push(node);
                }
            }
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use imprecise_xmlkit::parse;

    fn catalog() -> XmlDoc {
        parse(
            "<catalog>\
               <movie><title>Jaws</title><year>1975</year>\
                 <genre>Horror</genre><director>Steven Spielberg</director></movie>\
               <movie><title>Jaws 2</title><year>1978</year>\
                 <genre>Horror</genre><director>Jeannot Szwarc</director></movie>\
               <movie><title>Die Hard: With a Vengeance</title><year>1995</year>\
                 <genre>Action</genre><director>John McTiernan</director></movie>\
               <movie><title>Mission: Impossible II</title><year>2000</year>\
                 <genre>Action</genre><director>John Woo</director></movie>\
             </catalog>",
        )
        .unwrap()
    }

    fn values(doc: &XmlDoc, q: &str) -> Vec<String> {
        eval_xml_values(doc, &parse_query(q).unwrap())
    }

    #[test]
    fn simple_child_path() {
        let doc = catalog();
        let titles = values(&doc, "/catalog/movie/title");
        assert_eq!(titles.len(), 4);
        assert_eq!(titles[0], "Jaws");
    }

    #[test]
    fn descendant_axis_finds_all() {
        let doc = catalog();
        assert_eq!(values(&doc, "//title").len(), 4);
        assert_eq!(values(&doc, "//genre").len(), 2); // deduped values
        assert_eq!(eval_xml(&doc, &parse_query("//genre").unwrap()).len(), 4);
    }

    #[test]
    fn paper_horror_query() {
        let doc = catalog();
        let titles = values(&doc, "//movie[.//genre=\"Horror\"]/title");
        assert_eq!(titles, vec!["Jaws", "Jaws 2"]);
    }

    #[test]
    fn paper_john_query() {
        let doc = catalog();
        let titles = values(
            &doc,
            "//movie[some $d in .//director satisfies contains($d,\"John\")]/title",
        );
        assert_eq!(
            titles,
            vec!["Die Hard: With a Vengeance", "Mission: Impossible II"]
        );
    }

    #[test]
    fn equality_predicate_on_child() {
        let doc = catalog();
        let titles = values(&doc, "//movie[year=\"1975\"]/title");
        assert_eq!(titles, vec!["Jaws"]);
    }

    #[test]
    fn boolean_predicates() {
        let doc = catalog();
        let and_titles = values(
            &doc,
            "//movie[genre=\"Action\" and contains(director,\"Woo\")]/title",
        );
        assert_eq!(and_titles, vec!["Mission: Impossible II"]);
        let or_titles = values(&doc, "//movie[year=\"1975\" or year=\"1978\"]/title");
        assert_eq!(or_titles, vec!["Jaws", "Jaws 2"]);
        let not_titles = values(&doc, "//movie[not(genre=\"Action\")]/title");
        assert_eq!(not_titles, vec!["Jaws", "Jaws 2"]);
    }

    #[test]
    fn comparison_predicates_are_numeric_when_possible() {
        let doc = catalog();
        assert_eq!(
            values(&doc, "//movie[year >= 1995]/title"),
            vec!["Die Hard: With a Vengeance", "Mission: Impossible II"]
        );
        assert_eq!(values(&doc, "//movie[year < 1978]/title"), vec!["Jaws"]);
        // != is existential like XPath: every movie has a year != 2000
        // except MI2 (single year node each).
        assert_eq!(values(&doc, "//movie[year != 2000]/title").len(), 3);
        // Numeric comparison, not lexicographic: "978" < "1995" as strings
        // would be false byte-wise ('9' > '1'), but 978 < 1995 numerically.
        let doc2 = parse("<c><m><y>978</y><t>old</t></m></c>").unwrap();
        assert_eq!(values(&doc2, "//m[y < 1995]/t"), vec!["old"]);
    }

    #[test]
    fn starts_with_predicate() {
        let doc = catalog();
        assert_eq!(
            values(&doc, "//movie[starts-with(title, \"Jaws\")]/year"),
            vec!["1975", "1978"]
        );
        assert!(values(&doc, "//movie[starts-with(title, \"aws\")]/year").is_empty());
    }

    #[test]
    fn exists_predicate() {
        let doc = catalog();
        assert_eq!(values(&doc, "//movie[director]/title").len(), 4);
        assert!(values(&doc, "//movie[rating]/title").is_empty());
    }

    #[test]
    fn wildcard_step() {
        let doc = catalog();
        // All grandchildren of movies.
        let vals = eval_xml(&doc, &parse_query("//movie/*").unwrap());
        assert_eq!(vals.len(), 16);
    }

    #[test]
    fn descendant_excludes_self() {
        let doc = parse("<a><a><b>x</b></a></a>").unwrap();
        // Inner //a from outer a: only the nested one.
        let q = parse_query("/a//a").unwrap();
        assert_eq!(eval_xml(&doc, &q).len(), 1);
        // But //a from the document finds both.
        let q = parse_query("//a").unwrap();
        assert_eq!(eval_xml(&doc, &q).len(), 2);
    }

    #[test]
    fn no_duplicate_results_from_overlapping_paths() {
        let doc = parse("<a><x><x><t>v</t></x></x></a>").unwrap();
        // //x//t reaches t via both x's.
        let q = parse_query("//x//t").unwrap();
        assert_eq!(eval_xml(&doc, &q).len(), 1);
    }

    #[test]
    fn mismatched_root_child_step() {
        let doc = catalog();
        assert!(values(&doc, "/library/movie").is_empty());
    }
}
