//! Property test: the exact symbolic evaluator agrees with the naive
//! possible-worlds evaluator on arbitrary probabilistic documents and a
//! battery of query shapes. This is the central correctness argument for
//! the §VI query semantics.

use imprecise_pxml::{PxDoc, PxNodeId};
use imprecise_query::{eval_px, eval_px_naive, parse_query, QueryPlan};
use proptest::prelude::*;

const TITLES: [&str; 4] = ["Jaws", "Jaws 2", "Die Hard", "MI2"];
const GENRES: [&str; 3] = ["Horror", "Action", "Crime"];
const DIRECTORS: [&str; 3] = ["John Woo", "Spielberg", "John McTiernan"];

/// Recipe for one movie element, possibly with uncertain fields.
#[derive(Debug, Clone)]
struct MovieSpec {
    title: u8,
    /// When set, the title is a choice between `title` and this variant.
    alt_title: Option<u8>,
    genre: u8,
    director: Option<u8>,
    /// Year offset from 1990; when `alt_year` is set the year is a choice.
    year: u8,
    alt_year: Option<u8>,
    /// Probability weight used for binary choices in this movie.
    w: u8, // 1..=9 → 0.1..=0.9
}

/// Recipe for the catalog: certain movies plus optional movies.
#[derive(Debug, Clone)]
struct DocSpec {
    certain: Vec<MovieSpec>,
    optional: Vec<MovieSpec>,
}

fn movie_strategy() -> impl Strategy<Value = MovieSpec> {
    (
        0u8..TITLES.len() as u8,
        proptest::option::of(0u8..TITLES.len() as u8),
        0u8..GENRES.len() as u8,
        proptest::option::of(0u8..DIRECTORS.len() as u8),
        0u8..12u8,
        proptest::option::of(0u8..12u8),
        1u8..=9u8,
    )
        .prop_map(
            |(title, alt_title, genre, director, year, alt_year, w)| MovieSpec {
                title,
                alt_title,
                genre,
                director,
                year,
                alt_year,
                w,
            },
        )
}

fn doc_strategy() -> impl Strategy<Value = DocSpec> {
    (
        proptest::collection::vec(movie_strategy(), 0..3),
        proptest::collection::vec(movie_strategy(), 0..3),
    )
        .prop_map(|(certain, optional)| DocSpec { certain, optional })
}

fn build_movie(px: &mut PxDoc, parent: PxNodeId, spec: &MovieSpec) {
    let m = px.add_elem(parent, "movie");
    match spec.alt_title {
        None => {
            px.add_text_elem(m, "title", TITLES[spec.title as usize]);
        }
        Some(alt) => {
            let t = px.add_elem(m, "title");
            let c = px.add_prob(t);
            let w = f64::from(spec.w) / 10.0;
            let a = px.add_poss(c, w);
            px.add_text(a, TITLES[spec.title as usize]);
            let b = px.add_poss(c, 1.0 - w);
            px.add_text(b, TITLES[alt as usize]);
        }
    }
    px.add_text_elem(m, "genre", GENRES[spec.genre as usize]);
    match spec.alt_year {
        None => {
            px.add_text_elem(m, "year", (1990 + spec.year as u32).to_string());
        }
        Some(alt) => {
            let y = px.add_elem(m, "year");
            let c = px.add_prob(y);
            let w = f64::from(spec.w) / 10.0;
            let a = px.add_poss(c, w);
            px.add_text(a, (1990 + spec.year as u32).to_string());
            let b = px.add_poss(c, 1.0 - w);
            px.add_text(b, (1990 + alt as u32).to_string());
        }
    }
    if let Some(d) = spec.director {
        px.add_text_elem(m, "director", DIRECTORS[d as usize]);
    }
}

fn build_doc(spec: &DocSpec) -> PxDoc {
    let mut px = PxDoc::new();
    let w = px.add_poss(px.root(), 1.0);
    let cat = px.add_elem(w, "catalog");
    for m in &spec.certain {
        build_movie(&mut px, cat, m);
    }
    for m in &spec.optional {
        let c = px.add_prob(cat);
        let weight = f64::from(m.w) / 10.0;
        let yes = px.add_poss(c, weight);
        build_movie(&mut px, yes, m);
        px.add_poss(c, 1.0 - weight);
    }
    px.validate().expect("generated doc is valid");
    px
}

const QUERIES: [&str; 13] = [
    "//movie/title",
    "//title",
    "//movie[genre=\"Horror\"]/title",
    "//movie[genre=\"Horror\" or genre=\"Action\"]/title",
    "//movie[not(genre=\"Horror\")]/title",
    "//movie[contains(title,\"Jaws\")]/genre",
    "//movie[some $d in .//director satisfies contains($d,\"John\")]/title",
    "//movie[director and genre=\"Action\"]/title",
    "//movie[year >= 1995]/title",
    "//movie[year != 1995]/title",
    "//movie[year < 1996 and not(genre=\"Crime\")]/title",
    "//movie[starts-with(title,\"Jaws\")]/year",
    "//movie[starts-with(title,\"Jaws\") or year > 2000]/genre",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_equals_naive(spec in doc_strategy(), query_idx in 0usize..QUERIES.len()) {
        let px = build_doc(&spec);
        let query = parse_query(QUERIES[query_idx]).unwrap();
        let naive = eval_px_naive(&px, &query, 100_000).unwrap();
        let exact = eval_px(&px, &query).unwrap();
        prop_assert_eq!(naive.len(), exact.len());
        for item in &naive.items {
            let p = exact.probability_of(&item.value);
            prop_assert!(
                (p - item.probability).abs() < 1e-9,
                "value {}: naive {} vs exact {}", item.value, item.probability, p
            );
        }
    }

    /// The planned, streaming pipeline is byte-identical to the one-shot
    /// evaluator at threshold 0: same values, same probabilities (bitwise),
    /// same ranking. The plan layer must never change a result.
    #[test]
    fn plan_collect_is_byte_identical_to_eval_px(
        spec in doc_strategy(),
        query_idx in 0usize..QUERIES.len(),
    ) {
        let px = build_doc(&spec);
        let query = parse_query(QUERIES[query_idx]).unwrap();
        let classic = eval_px(&px, &query).unwrap();
        let planned = QueryPlan::compile(&query).collect(&px).unwrap();
        prop_assert_eq!(planned.len(), classic.len());
        for (p, c) in planned.items.iter().zip(&classic.items) {
            prop_assert_eq!(&p.value, &c.value);
            prop_assert_eq!(p.probability.to_bits(), c.probability.to_bits(),
                "value {}: planned {} vs classic {}", p.value, p.probability, c.probability);
        }
    }

    /// Threshold pushdown streams exactly the naive evaluator's answers
    /// filtered at the threshold — pruning never drops an answer whose
    /// true probability meets it, and never distorts a probability.
    /// (Thresholds sit away from the probabilities the generated docs can
    /// produce, so the comparison has no floating-point boundary cases.)
    #[test]
    fn stream_with_threshold_equals_filtered_naive(
        spec in doc_strategy(),
        query_idx in 0usize..QUERIES.len(),
        threshold_idx in 0usize..4,
    ) {
        let threshold = [0.15037171, 0.33017171, 0.55071717, 0.90031717][threshold_idx];
        let px = build_doc(&spec);
        let query = parse_query(QUERIES[query_idx]).unwrap();
        let naive = eval_px_naive(&px, &query, 100_000).unwrap();
        let streamed: Vec<_> = QueryPlan::compile(&query)
            .with_min_probability(threshold)
            .execute(&px)
            .unwrap()
            .collect();
        let expected: Vec<_> = naive
            .items
            .iter()
            .filter(|a| a.probability >= threshold)
            .collect();
        prop_assert_eq!(streamed.len(), expected.len(),
            "threshold {}: stream {:?} vs naive-filtered {:?}",
            threshold, streamed, expected);
        for answer in &streamed {
            let p = naive.probability_of(answer.value.as_str());
            prop_assert!(p >= threshold - 1e-9);
            prop_assert!(
                (p - answer.probability).abs() < 1e-9,
                "value {}: stream {} vs naive {}", answer.value, answer.probability, p
            );
        }
    }

    #[test]
    fn answer_probabilities_are_valid(spec in doc_strategy(), query_idx in 0usize..QUERIES.len()) {
        let px = build_doc(&spec);
        let query = parse_query(QUERIES[query_idx]).unwrap();
        let exact = eval_px(&px, &query).unwrap();
        for item in &exact.items {
            prop_assert!(item.probability > 0.0 && item.probability <= 1.0 + 1e-12);
        }
        // Ranking is monotone.
        for pair in exact.items.windows(2) {
            prop_assert!(pair[0].probability >= pair[1].probability - 1e-12);
        }
    }
}
