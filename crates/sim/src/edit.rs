//! Levenshtein edit distance and the similarity derived from it.
//!
//! Three execution tiers, all computing the same integers:
//!
//! * ASCII pairs whose shorter side fits 64 bytes run Myers' bit-parallel
//!   recurrence on the stack — no allocation at all;
//! * everything else runs the classic two-row DP over bytes or Unicode
//!   scalars, with the rows (and char scratch) reused from a thread-local
//!   buffer instead of being re-collected per call;
//! * one-vs-many batches ([`levenshtein_batch`], [`similarity_batch`])
//!   preprocess the pattern once and hand contiguous ASCII runs to the
//!   runtime-selected SIMD kernel in [`crate::simd`].
//!
//! Distances are exact in every tier, so derived `f64` similarities are
//! bit-identical no matter which tier or kernel computed them.

use crate::simd::{self, generic::MyersPattern, EditKernel};
use std::cell::RefCell;

thread_local! {
    /// Reusable DP rows and char scratch for the non-Myers tiers.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

#[derive(Default)]
struct Scratch {
    prev: Vec<usize>,
    cur: Vec<usize>,
    a_chars: Vec<char>,
    b_chars: Vec<char>,
}

/// Levenshtein (edit) distance between two strings, computed over Unicode
/// scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    if a.is_ascii() && b.is_ascii() {
        return levenshtein_ascii(a.as_bytes(), b.as_bytes());
    }
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.a_chars.clear();
        s.a_chars.extend(a.chars());
        s.b_chars.clear();
        s.b_chars.extend(b.chars());
        two_row(&s.a_chars, &s.b_chars, &mut s.prev, &mut s.cur)
    })
}

/// ASCII fast path: bytes are scalars, so the shorter side can drive the
/// allocation-free Myers tier whenever it fits one machine word.
fn levenshtein_ascii(a: &[u8], b: &[u8]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (pat, txt) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pat.len() <= 64 {
        return MyersPattern::new(pat).distance(txt);
    }
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        two_row(a, b, &mut s.prev, &mut s.cur)
    })
}

/// Classic two-row DP over any scalar slice, reusing caller-owned rows.
fn two_row<T: PartialEq>(a: &[T], b: &[T], prev: &mut Vec<usize>, cur: &mut Vec<usize>) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the shorter string in the inner loop for less memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    prev.clear();
    prev.extend(0..=short.len());
    cur.clear();
    cur.resize(short.len() + 1, 0);
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let substitution = prev[j] + usize::from(lc != sc);
            let insertion = cur[j] + 1;
            let deletion = prev[j + 1] + 1;
            cur[j + 1] = substitution.min(insertion).min(deletion);
        }
        std::mem::swap(prev, cur);
    }
    prev[short.len()]
}

/// Normalised Levenshtein similarity: `1 − distance / max_len`, in `[0, 1]`.
/// Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// One-vs-many Levenshtein: the distance of `a` against each string in
/// `bs`, in order, using the process-wide active kernel.
///
/// Equal to calling [`levenshtein`] per pair, but the pattern is
/// preprocessed once and contiguous ASCII texts go to the SIMD kernel.
pub fn levenshtein_batch(a: &str, bs: &[&str]) -> Vec<usize> {
    let mut out = Vec::new();
    levenshtein_batch_with(simd::active(), a, bs, &mut out);
    out
}

/// [`levenshtein_batch`] against an explicit kernel, appending to `out`
/// (cleared first). The kernel-equivalence property tests drive this.
pub fn levenshtein_batch_with(kernel: &dyn EditKernel, a: &str, bs: &[&str], out: &mut Vec<usize>) {
    out.clear();
    out.reserve(bs.len());
    if !a.is_ascii() || a.is_empty() || a.len() > 64 {
        // The kernels require a word-sized ASCII pattern; everything else
        // takes the scalar tiers pair by pair.
        out.extend(bs.iter().map(|b| levenshtein(a, b)));
        return;
    }
    let pat = a.as_bytes();
    let mut run: Vec<&[u8]> = Vec::new();
    let mut i = 0;
    while i < bs.len() {
        if bs[i].is_ascii() {
            run.clear();
            while i < bs.len() && bs[i].is_ascii() {
                run.push(bs[i].as_bytes());
                i += 1;
            }
            kernel.levenshtein_ascii_batch(pat, &run, out);
        } else {
            out.push(levenshtein(a, bs[i]));
            i += 1;
        }
    }
}

/// One-vs-many normalised Levenshtein similarity, bit-identical to
/// calling [`levenshtein_similarity`] per pair.
pub fn similarity_batch(a: &str, bs: &[&str]) -> Vec<f64> {
    let la = a.chars().count();
    let distances = levenshtein_batch(a, bs);
    bs.iter()
        .zip(distances)
        .map(|(b, d)| {
            let max_len = la.max(b.chars().count());
            if max_len == 0 {
                1.0
            } else {
                1.0 - d as f64 / max_len as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        for (a, b) in [("jaws", "jaws 2"), ("die hard", "die harder"), ("a", "b")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let (a, b, c) = ("mission", "missing", "omission");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("★★", "★"), 1);
    }

    #[test]
    fn long_ascii_uses_the_dp_tier() {
        // Shorter side over 64 bytes: exercises the reusable-row DP.
        let a = "x".repeat(80);
        let b = format!("{}y", "x".repeat(80));
        assert_eq!(levenshtein(&a, &b), 1);
        let c = "z".repeat(100);
        assert_eq!(levenshtein(&a, &c), 100);
    }

    #[test]
    fn mixed_ascii_unicode_pairs() {
        assert_eq!(levenshtein("café", "cafx"), 1);
        assert_eq!(levenshtein("naïve", "naive"), 1);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("jaws", "jaws 2");
        assert!((s - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn batch_equals_per_pair() {
        let bs = ["sitting", "", "kitten", "café", "a much longer text here"];
        let batch = levenshtein_batch("kitten", &bs);
        let pairwise: Vec<usize> = bs.iter().map(|b| levenshtein("kitten", b)).collect();
        assert_eq!(batch, pairwise);

        let sims = similarity_batch("kitten", &bs);
        for (s, b) in sims.iter().zip(bs) {
            assert_eq!(
                s.to_bits(),
                levenshtein_similarity("kitten", b).to_bits(),
                "similarity for {b:?}"
            );
        }
    }

    #[test]
    fn batch_with_non_kernel_pattern() {
        // Non-ASCII and over-long patterns fall back per pair.
        let bs = ["cafe", "café", "x"];
        assert_eq!(
            levenshtein_batch("café", &bs),
            vec![1, 0, 4],
            "non-ascii pattern"
        );
        let long = "q".repeat(70);
        let expect: Vec<usize> = bs.iter().map(|b| levenshtein(&long, b)).collect();
        assert_eq!(levenshtein_batch(&long, &bs), expect, "over-long pattern");
        assert_eq!(levenshtein_batch("", &bs), vec![4, 4, 1], "empty pattern");
    }
}
