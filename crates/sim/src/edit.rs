//! Levenshtein edit distance and the similarity derived from it.

/// Levenshtein (edit) distance between two strings, computed over Unicode
/// scalar values with the classic two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    if a_chars.is_empty() {
        return b_chars.len();
    }
    if b_chars.is_empty() {
        return a_chars.len();
    }
    // Keep the shorter string in the inner loop for less memory.
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let substitution = prev[j] + usize::from(lc != sc);
            let insertion = cur[j] + 1;
            let deletion = prev[j + 1] + 1;
            cur[j + 1] = substitution.min(insertion).min(deletion);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalised Levenshtein similarity: `1 − distance / max_len`, in `[0, 1]`.
/// Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        for (a, b) in [("jaws", "jaws 2"), ("die hard", "die harder"), ("a", "b")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let (a, b, c) = ("mission", "missing", "omission");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("★★", "★"), 1);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("jaws", "jaws 2");
        assert!((s - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
    }
}
