//! Jaro and Jaro-Winkler similarity for short strings (person names).

/// Jaro similarity between two strings in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    let (la, lb) = (a_chars.len(), b_chars.len());
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let window = (la.max(lb) / 2).saturating_sub(1);
    let mut b_used = vec![false; lb];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a_chars.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(lb);
        for j in lo..hi {
            if !b_used[j] && b_chars[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b_chars
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / la as f64 + m / lb as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted for a shared prefix (up to four
/// characters, scaling factor 0.1 — the standard parameters).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let base = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    base + prefix * 0.1 * (1.0 - base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        // Classic examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813));
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("john", "john"), 1.0);
        assert_eq!(jaro_winkler("john", "john"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("john woo", "woo john"), ("martha", "marhta"), ("x", "xy")] {
            assert!(close(jaro(a, b), jaro(b, a)));
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)));
        }
    }

    #[test]
    fn winkler_boosts_prefix_matches() {
        let plain = jaro("prefixed", "prefixes");
        let boosted = jaro_winkler("prefixed", "prefixes");
        assert!(boosted > plain);
        // No shared prefix → no boost.
        assert_eq!(jaro("abc", "zbc"), jaro_winkler("abc", "zbc"));
    }

    #[test]
    fn bounded_in_unit_interval() {
        for (a, b) in [
            ("john mctiernan", "john woo"),
            ("steven spielberg", "spielberg steven"),
            ("a", "aaaaaaaaaaaa"),
        ] {
            let j = jaro(a, b);
            let jw = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&j), "jaro {j}");
            assert!((0.0..=1.0).contains(&jw), "jw {jw}");
            assert!(jw >= j);
        }
    }
}
