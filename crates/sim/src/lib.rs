//! # imprecise-sim — string similarity substrate
//!
//! The Oracle's domain rules compare element values: *"two movies cannot
//! match if their titles are not sufficiently similar"*, and the movie
//! sources "use different conventions for, e.g., naming directors, so these
//! never match exactly" (§V). This crate supplies the string machinery that
//! those rules are built on — edit distance, Jaro/Jaro-Winkler, token-set
//! measures, and the normalisers that reconcile source conventions
//! (`"Woo, John"` vs `"John Woo"`, roman vs arabic sequel numbers).
//!
//! Everything is implemented here (no third-party similarity crates), is
//! allocation-conscious, and is deterministic across platforms.

pub mod edit;
pub mod jaro;
pub mod normalize;
pub mod token;

pub use edit::{levenshtein, levenshtein_similarity};
pub use jaro::{jaro, jaro_winkler};
pub use normalize::{normalize_person_name, normalize_title, normalize_token};
pub use token::{dice_trigram, jaccard_tokens, tokenize};

/// Similarity between two movie titles in `[0, 1]`.
///
/// Titles are normalised (case, punctuation, roman numerals) and compared
/// with a blend of token-set Jaccard (robust to re-ordering and subtitle
/// punctuation) and character-level Levenshtein (robust to typos). The
/// blend takes the maximum: either signal alone suffices to call two titles
/// "sufficiently similar" in the sense of the paper's title rule.
pub fn title_similarity(a: &str, b: &str) -> f64 {
    let na = normalize_title(a);
    let nb = normalize_title(b);
    if na.is_empty() && nb.is_empty() {
        return 1.0;
    }
    let token_sim = jaccard_tokens(&na, &nb);
    let char_sim = levenshtein_similarity(&na, &nb);
    token_sim.max(char_sim)
}

/// Similarity between two person names in `[0, 1]`.
///
/// Names are normalised into `given family` order (fixing the
/// `"Family, Given"` convention of one source) before a Jaro-Winkler
/// comparison, which is the standard measure for short person names.
pub fn person_name_similarity(a: &str, b: &str) -> f64 {
    let na = normalize_person_name(a);
    let nb = normalize_person_name(b);
    if na.is_empty() && nb.is_empty() {
        return 1.0;
    }
    jaro_winkler(&na, &nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_titles_score_one() {
        assert_eq!(title_similarity("Jaws", "Jaws"), 1.0);
    }

    #[test]
    fn sequels_are_similar_but_not_identical() {
        let s = title_similarity("Mission: Impossible", "Mission: Impossible II");
        assert!(s > 0.6 && s < 1.0, "similarity {s}");
    }

    #[test]
    fn roman_and_arabic_sequel_numbers_unify() {
        let s = title_similarity("Mission: Impossible II", "Mission Impossible 2");
        assert_eq!(
            s, 1.0,
            "roman numeral normalisation should make these equal"
        );
    }

    #[test]
    fn unrelated_titles_score_low() {
        let s = title_similarity("Jaws", "Die Hard: With a Vengeance");
        assert!(s < 0.35, "similarity {s}");
    }

    #[test]
    fn director_conventions_unify() {
        let s = person_name_similarity("McTiernan, John", "John McTiernan");
        assert!(s > 0.99, "similarity {s}");
    }

    #[test]
    fn different_johns_are_distinguishable() {
        let s = person_name_similarity("John Woo", "John McTiernan");
        assert!(s < 0.9, "similarity {s}");
    }

    #[test]
    fn empty_strings() {
        assert_eq!(title_similarity("", ""), 1.0);
        assert_eq!(person_name_similarity("", ""), 1.0);
        assert!(title_similarity("Jaws", "") < 0.1);
    }
}
