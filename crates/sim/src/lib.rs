//! # imprecise-sim — string similarity substrate
//!
//! The Oracle's domain rules compare element values: *"two movies cannot
//! match if their titles are not sufficiently similar"*, and the movie
//! sources "use different conventions for, e.g., naming directors, so these
//! never match exactly" (§V). This crate supplies the string machinery that
//! those rules are built on — edit distance, Jaro/Jaro-Winkler, token-set
//! measures, and the normalisers that reconcile source conventions
//! (`"Woo, John"` vs `"John Woo"`, roman vs arabic sequel numbers).
//!
//! Everything is implemented here (no third-party similarity crates), is
//! allocation-conscious, and is deterministic across platforms.

pub mod edit;
pub mod jaro;
pub mod normalize;
pub mod simd;
pub mod token;

pub use edit::{levenshtein, levenshtein_batch, levenshtein_similarity, similarity_batch};
pub use jaro::{jaro, jaro_winkler};
pub use normalize::{normalize_person_name, normalize_title, normalize_token};
pub use token::{dice_trigram, jaccard_token_sets, jaccard_tokens, token_set, tokenize};

use std::collections::BTreeSet;

/// Similarity between two movie titles in `[0, 1]`.
///
/// Titles are normalised (case, punctuation, roman numerals) and compared
/// with a blend of token-set Jaccard (robust to re-ordering and subtitle
/// punctuation) and character-level Levenshtein (robust to typos). The
/// blend takes the maximum: either signal alone suffices to call two titles
/// "sufficiently similar" in the sense of the paper's title rule.
pub fn title_similarity(a: &str, b: &str) -> f64 {
    let na = normalize_title(a);
    let nb = normalize_title(b);
    if na.is_empty() && nb.is_empty() {
        return 1.0;
    }
    let token_sim = jaccard_tokens(&na, &nb);
    let char_sim = levenshtein_similarity(&na, &nb);
    token_sim.max(char_sim)
}

/// Similarity between two person names in `[0, 1]`.
///
/// Names are normalised into `given family` order (fixing the
/// `"Family, Given"` convention of one source) before a Jaro-Winkler
/// comparison, which is the standard measure for short person names.
pub fn person_name_similarity(a: &str, b: &str) -> f64 {
    let na = normalize_person_name(a);
    let nb = normalize_person_name(b);
    if na.is_empty() && nb.is_empty() {
        return 1.0;
    }
    jaro_winkler(&na, &nb)
}

/// One movie title preprocessed for one-vs-many comparison.
///
/// Normalisation and tokenisation of the left-hand title happen once at
/// construction; [`PreparedTitle::similarity`] then produces exactly the
/// same bits as [`title_similarity`] for every right-hand title, and
/// [`PreparedTitle::similarity_batch`] additionally routes the
/// character-level comparisons through the active SIMD kernel.
#[derive(Debug, Clone)]
pub struct PreparedTitle {
    norm: String,
    tokens: BTreeSet<String>,
}

impl PreparedTitle {
    pub fn new(a: &str) -> Self {
        let norm = normalize_title(a);
        let tokens = token_set(&norm);
        PreparedTitle { norm, tokens }
    }

    /// Bit-identical to `title_similarity(a, b)`.
    pub fn similarity(&self, b: &str) -> f64 {
        let nb = normalize_title(b);
        if self.norm.is_empty() && nb.is_empty() {
            return 1.0;
        }
        let token_sim = jaccard_token_sets(&self.tokens, &token_set(&nb));
        let char_sim = levenshtein_similarity(&self.norm, &nb);
        token_sim.max(char_sim)
    }

    /// One-vs-many [`PreparedTitle::similarity`], batching the edit
    /// distances through the active kernel. Bit-identical per element.
    pub fn similarity_batch(&self, bs: &[&str]) -> Vec<f64> {
        let nbs: Vec<String> = bs.iter().map(|b| normalize_title(b)).collect();
        let refs: Vec<&str> = nbs.iter().map(String::as_str).collect();
        let char_sims = similarity_batch(&self.norm, &refs);
        nbs.iter()
            .zip(char_sims)
            .map(|(nb, char_sim)| {
                if self.norm.is_empty() && nb.is_empty() {
                    1.0
                } else {
                    jaccard_token_sets(&self.tokens, &token_set(nb)).max(char_sim)
                }
            })
            .collect()
    }
}

/// One person name preprocessed for one-vs-many comparison: the
/// normalisation of the left-hand name is done once. Bit-identical to
/// [`person_name_similarity`] per right-hand name.
#[derive(Debug, Clone)]
pub struct PreparedPersonName {
    norm: String,
}

impl PreparedPersonName {
    pub fn new(a: &str) -> Self {
        PreparedPersonName {
            norm: normalize_person_name(a),
        }
    }

    /// Bit-identical to `person_name_similarity(a, b)`.
    pub fn similarity(&self, b: &str) -> f64 {
        let nb = normalize_person_name(b);
        if self.norm.is_empty() && nb.is_empty() {
            return 1.0;
        }
        jaro_winkler(&self.norm, &nb)
    }

    /// One-vs-many [`PreparedPersonName::similarity`]. Jaro-Winkler has no
    /// vector kernel; this amortises the left-hand normalisation only.
    pub fn similarity_batch(&self, bs: &[&str]) -> Vec<f64> {
        bs.iter().map(|b| self.similarity(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_title_matches_the_free_function() {
        let lhs = [
            "Mission: Impossible II",
            "Jaws",
            "",
            "Die Hard: With a Vengeance",
        ];
        let rhs = [
            "Mission Impossible 2",
            "Jaws 2",
            "",
            "Die Hard",
            "Live Free or Die Hard",
        ];
        for a in lhs {
            let prep = PreparedTitle::new(a);
            let batch = prep.similarity_batch(&rhs);
            for (b, batched) in rhs.iter().zip(batch) {
                let expect = title_similarity(a, b);
                assert_eq!(prep.similarity(b).to_bits(), expect.to_bits(), "{a} vs {b}");
                assert_eq!(batched.to_bits(), expect.to_bits(), "{a} vs {b} (batch)");
            }
        }
    }

    #[test]
    fn prepared_person_name_matches_the_free_function() {
        let lhs = ["McTiernan, John", "John Woo", ""];
        let rhs = ["John McTiernan", "Woo, John", "Jan de Bont", ""];
        for a in lhs {
            let prep = PreparedPersonName::new(a);
            let batch = prep.similarity_batch(&rhs);
            for (b, batched) in rhs.iter().zip(batch) {
                let expect = person_name_similarity(a, b);
                assert_eq!(prep.similarity(b).to_bits(), expect.to_bits(), "{a} vs {b}");
                assert_eq!(batched.to_bits(), expect.to_bits(), "{a} vs {b} (batch)");
            }
        }
    }

    #[test]
    fn identical_titles_score_one() {
        assert_eq!(title_similarity("Jaws", "Jaws"), 1.0);
    }

    #[test]
    fn sequels_are_similar_but_not_identical() {
        let s = title_similarity("Mission: Impossible", "Mission: Impossible II");
        assert!(s > 0.6 && s < 1.0, "similarity {s}");
    }

    #[test]
    fn roman_and_arabic_sequel_numbers_unify() {
        let s = title_similarity("Mission: Impossible II", "Mission Impossible 2");
        assert_eq!(
            s, 1.0,
            "roman numeral normalisation should make these equal"
        );
    }

    #[test]
    fn unrelated_titles_score_low() {
        let s = title_similarity("Jaws", "Die Hard: With a Vengeance");
        assert!(s < 0.35, "similarity {s}");
    }

    #[test]
    fn director_conventions_unify() {
        let s = person_name_similarity("McTiernan, John", "John McTiernan");
        assert!(s > 0.99, "similarity {s}");
    }

    #[test]
    fn different_johns_are_distinguishable() {
        let s = person_name_similarity("John Woo", "John McTiernan");
        assert!(s < 0.9, "similarity {s}");
    }

    #[test]
    fn empty_strings() {
        assert_eq!(title_similarity("", ""), 1.0);
        assert_eq!(person_name_similarity("", ""), 1.0);
        assert!(title_similarity("Jaws", "") < 0.1);
    }
}
