//! Normalisers that reconcile per-source conventions before comparison.
//!
//! §V of the paper: "The sources use different conventions for, e.g.,
//! naming directors, so these never match exactly." Normalisation is what
//! lets simple rules make absolute decisions despite convention mismatch.

/// Normalise one token: lowercase and convert roman numerals (up to 20,
/// the practical range for sequels) to arabic digits.
pub fn normalize_token(token: &str) -> String {
    let lower = token.to_lowercase();
    if let Some(arabic) = roman_to_arabic(&lower) {
        return arabic.to_string();
    }
    lower
}

/// Normalise a movie title: lowercase, strip punctuation, convert roman
/// numerals, collapse whitespace, and drop format qualifiers like `(tv)`.
pub fn normalize_title(title: &str) -> String {
    let tokens = imprecise_sim_tokenize(title);
    let mut out = String::with_capacity(title.len());
    for token in tokens {
        let n = normalize_token(&token);
        if n == "tv" || n == "videogame" || n == "video" {
            // Format qualifiers: "Jaws (TV)" names the same franchise entry
            // family; the year rule distinguishes them when needed.
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&n);
    }
    out
}

/// Normalise a person name into lowercase `given family` order.
///
/// Handles the `"Family, Given"` convention (IMDB style) by swapping
/// around the first comma, then lowercases and collapses whitespace.
pub fn normalize_person_name(name: &str) -> String {
    let reordered: String = match name.split_once(',') {
        Some((family, given)) => format!("{} {}", given.trim(), family.trim()),
        None => name.trim().to_string(),
    };
    let tokens = imprecise_sim_tokenize(&reordered);
    tokens
        .iter()
        .map(|t| t.to_lowercase())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parse a roman numeral in `i..=xx`, the range sequels occupy.
fn roman_to_arabic(s: &str) -> Option<u32> {
    const TABLE: [(&str, u32); 20] = [
        ("i", 1),
        ("ii", 2),
        ("iii", 3),
        ("iv", 4),
        ("v", 5),
        ("vi", 6),
        ("vii", 7),
        ("viii", 8),
        ("ix", 9),
        ("x", 10),
        ("xi", 11),
        ("xii", 12),
        ("xiii", 13),
        ("xiv", 14),
        ("xv", 15),
        ("xvi", 16),
        ("xvii", 17),
        ("xviii", 18),
        ("xix", 19),
        ("xx", 20),
    ];
    TABLE.iter().find(|(r, _)| *r == s).map(|&(_, v)| v)
}

/// Local tokenizer (kept separate from [`crate::token::tokenize`] to avoid
/// a circular dependency of normalisation defaults; same semantics).
fn imprecise_sim_tokenize(s: &str) -> Vec<String> {
    crate::token::tokenize(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_normalisation() {
        assert_eq!(normalize_token("II"), "2");
        assert_eq!(normalize_token("iv"), "4");
        assert_eq!(normalize_token("Jaws"), "jaws");
        assert_eq!(normalize_token("2"), "2");
        // "I" is a roman numeral; sequels rarely use it but the mapping is
        // consistent.
        assert_eq!(normalize_token("I"), "1");
    }

    #[test]
    fn title_normalisation() {
        assert_eq!(
            normalize_title("Mission: Impossible II"),
            "mission impossible 2"
        );
        assert_eq!(normalize_title("Die Hard 2"), "die hard 2");
        assert_eq!(normalize_title("Jaws (TV)"), "jaws");
        assert_eq!(normalize_title("  JAWS   2  "), "jaws 2");
        assert_eq!(normalize_title(""), "");
    }

    #[test]
    fn person_name_normalisation() {
        assert_eq!(normalize_person_name("McTiernan, John"), "john mctiernan");
        assert_eq!(normalize_person_name("John McTiernan"), "john mctiernan");
        assert_eq!(normalize_person_name("Woo, John"), "john woo");
        assert_eq!(
            normalize_person_name("  Spielberg ,  Steven "),
            "steven spielberg"
        );
        assert_eq!(normalize_person_name(""), "");
    }

    #[test]
    fn roman_numerals_bounded() {
        assert_eq!(roman_to_arabic("xx"), Some(20));
        assert_eq!(roman_to_arabic("xxi"), None);
        assert_eq!(roman_to_arabic("mcmxcv"), None); // out of sequel range
        assert_eq!(roman_to_arabic("jaws"), None);
    }

    #[test]
    fn normalised_titles_equal_for_convention_variants() {
        let variants = [
            "Mission: Impossible II",
            "mission impossible II",
            "Mission Impossible 2",
            "MISSION IMPOSSIBLE: 2",
        ];
        let first = normalize_title(variants[0]);
        for v in &variants[1..] {
            assert_eq!(normalize_title(v), first, "variant {v}");
        }
    }
}
