//! AVX2 kernel: four Myers lanes at once, one pattern vs four texts.
//!
//! The pattern's match masks are shared across lanes (they only depend on
//! the pattern), so a 256-bit register holds the `pv`/`mv` column state of
//! four independent texts and every step of the recurrence becomes a
//! handful of 64-bit-lane vector ops. `_mm256_add_epi64` keeps carries
//! inside each lane, which is exactly the per-text isolation Myers needs —
//! the integer recurrence is the scalar one, four copies wide, so the
//! distances are bit-identical to [`super::generic`] by construction.
//!
//! Texts of different lengths run in the same batch: a lane goes inactive
//! once its text is exhausted and its state/score updates are masked out
//! from then on.

use super::generic::MyersPattern;
use super::EditKernel;
use std::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_blendv_epi8, _mm256_cmpeq_epi64,
    _mm256_cmpgt_epi64, _mm256_or_si256, _mm256_set1_epi64x, _mm256_set_epi64x,
    _mm256_setzero_si256, _mm256_slli_epi64, _mm256_storeu_si256, _mm256_sub_epi64,
    _mm256_xor_si256,
};

/// The AVX2 implementation; constructible only via [`Avx2Kernel::detect`],
/// so a live instance proves the ISA is present.
#[derive(Debug)]
pub struct Avx2Kernel {
    _proof: (),
}

static AVX2: Avx2Kernel = Avx2Kernel { _proof: () };

impl Avx2Kernel {
    /// The AVX2 kernel if this CPU supports it, `None` otherwise.
    pub fn detect() -> Option<&'static Avx2Kernel> {
        // lint:allow(sim-isa-dispatch, single CPUID probe; callers cache the resulting kernel in simd::active's OnceLock and the kernel is bit-identical to generic, so detection cannot alter results)
        if std::is_x86_feature_detected!("avx2") {
            Some(&AVX2)
        } else {
            None
        }
    }
}

impl EditKernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn levenshtein_ascii_batch(&self, a: &[u8], bs: &[&[u8]], out: &mut Vec<usize>) {
        let pre = MyersPattern::new(a);
        out.reserve(bs.len());
        let mut chunks = bs.chunks_exact(4);
        for four in chunks.by_ref() {
            // SAFETY: an `Avx2Kernel` only exists after `detect()` saw
            // `avx2`, satisfying `myers4`'s target-feature requirement.
            // lint:allow(sim-unsafe, target-feature call gated by the detect() constructor proof; inputs are plain slices with no other invariants)
            let d = unsafe { myers4(&pre, four[0], four[1], four[2], four[3]) };
            out.extend_from_slice(&d);
        }
        for b in chunks.remainder() {
            out.push(pre.distance(b));
        }
    }
}

/// Four Myers columns in parallel: distance of the preprocessed pattern
/// against each of `t0..t3`.
///
/// # Safety
///
/// Requires AVX2 (enforced by the `Avx2Kernel::detect` constructor path).
#[target_feature(enable = "avx2")]
// lint:allow(sim-unsafe, the only unsafe operations are AVX2 intrinsics on register values and an aligned-free storeu into a local array; lane arithmetic is pure integer work)
unsafe fn myers4(pre: &MyersPattern, t0: &[u8], t1: &[u8], t2: &[u8], t3: &[u8]) -> [usize; 4] {
    let all_ones = _mm256_set1_epi64x(-1);
    let one = _mm256_set1_epi64x(1);
    let high = _mm256_set1_epi64x(pre.high_bit() as i64);
    let mut pv = all_ones;
    let mut mv = _mm256_setzero_si256();
    let mut score = _mm256_set1_epi64x(pre.len() as i64);
    let lens = _mm256_set_epi64x(
        t3.len() as i64,
        t2.len() as i64,
        t1.len() as i64,
        t0.len() as i64,
    );
    let max_len = t0.len().max(t1.len()).max(t2.len()).max(t3.len());
    let lane = |t: &[u8], j: usize| -> i64 {
        // Exhausted lanes read mask 0 at a neutral byte; their updates
        // are blended away below, so the value never reaches the score.
        pre.eq_mask(t.get(j).copied().unwrap_or(0)) as i64
    };
    for j in 0..max_len {
        let eq = _mm256_set_epi64x(lane(t3, j), lane(t2, j), lane(t1, j), lane(t0, j));
        let active = _mm256_cmpgt_epi64(lens, _mm256_set1_epi64x(j as i64));

        // The scalar recurrence, four lanes wide.
        let xv = _mm256_or_si256(eq, mv);
        let sum = _mm256_add_epi64(_mm256_and_si256(eq, pv), pv);
        let xh = _mm256_or_si256(_mm256_xor_si256(sum, pv), eq);
        let ph = _mm256_or_si256(mv, _mm256_xor_si256(_mm256_or_si256(xh, pv), all_ones));
        let mh = _mm256_and_si256(pv, xh);

        // score += (ph has the high bit) − (mh has the high bit), but
        // only in lanes whose text still has characters.
        let ph_hit = _mm256_cmpeq_epi64(_mm256_and_si256(ph, high), high);
        let mh_hit = _mm256_cmpeq_epi64(_mm256_and_si256(mh, high), high);
        let delta = _mm256_sub_epi64(_mm256_and_si256(ph_hit, one), _mm256_and_si256(mh_hit, one));
        score = _mm256_add_epi64(score, _mm256_and_si256(delta, active));

        let ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), one);
        let mh = _mm256_slli_epi64(mh, 1);
        let next_pv = _mm256_or_si256(mh, _mm256_xor_si256(_mm256_or_si256(xv, ph), all_ones));
        let next_mv = _mm256_and_si256(ph, xv);
        pv = _mm256_blendv_epi8(pv, next_pv, active);
        mv = _mm256_blendv_epi8(mv, next_mv, active);
    }
    let mut lanes = [0i64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), score);
    [
        lanes[0] as usize,
        lanes[1] as usize,
        lanes[2] as usize,
        lanes[3] as usize,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avx2_agrees_with_scalar_when_present() {
        let Some(kernel) = Avx2Kernel::detect() else {
            return; // Nothing to test on this CPU.
        };
        let pat = b"mission impossible";
        let texts: Vec<&[u8]> = vec![
            b"mission impossible 2",
            b"",
            b"mision imposible",
            b"jaws",
            b"die hard with a vengeance",
            b"mission impossible",
            b"m",
        ];
        let mut got = Vec::new();
        kernel.levenshtein_ascii_batch(pat, &texts, &mut got);
        let pre = MyersPattern::new(pat);
        let want: Vec<usize> = texts.iter().map(|t| pre.distance(t)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn mixed_length_lanes_mask_correctly() {
        let Some(kernel) = Avx2Kernel::detect() else {
            return;
        };
        // Lengths 0, 1, 64, 200 in one chunk: exercises lane masking on
        // both the shortest and far-past-pattern texts.
        let pat = [b'q'; 64];
        let long = vec![b'q'; 200];
        let texts: Vec<&[u8]> = vec![b"", b"q", &pat, &long];
        let mut got = Vec::new();
        kernel.levenshtein_ascii_batch(&pat, &texts, &mut got);
        assert_eq!(got, vec![64, 63, 0, 136]);
    }
}
