//! Portable scalar kernel: Myers' bit-parallel Levenshtein.
//!
//! Myers (1999) packs one column of the edit-distance DP into two 64-bit
//! words (`pv`/`mv`: positions where the column increases/decreases), so a
//! pattern of up to 64 characters advances one text character per constant
//! number of word operations. The recurrence is exact — it computes the
//! same integers as the classic two-row DP — which is what allows the
//! vectorised kernels to share this module's pattern preprocessing and
//! still be bit-identical.

use super::EditKernel;

/// The always-available scalar implementation.
#[derive(Debug, Default, Clone, Copy)]
pub struct GenericKernel;

impl EditKernel for GenericKernel {
    fn name(&self) -> &'static str {
        "generic"
    }

    fn levenshtein_ascii_batch(&self, a: &[u8], bs: &[&[u8]], out: &mut Vec<usize>) {
        let pre = MyersPattern::new(a);
        out.reserve(bs.len());
        for b in bs {
            out.push(pre.distance(b));
        }
    }
}

/// Preprocessed Myers state for one ASCII pattern of 1..=64 bytes: the
/// per-character match masks plus the score bit of the last pattern row.
pub(crate) struct MyersPattern {
    peq: [u64; 128],
    m: usize,
    high: u64,
}

impl MyersPattern {
    /// Preprocess `pat` (ASCII, 1..=64 bytes — the callers in this crate
    /// route longer or empty patterns to the two-row DP instead).
    pub(crate) fn new(pat: &[u8]) -> Self {
        debug_assert!(!pat.is_empty() && pat.len() <= 64 && pat.is_ascii());
        let mut peq = [0u64; 128];
        for (i, &c) in pat.iter().enumerate() {
            peq[(c & 0x7f) as usize] |= 1 << i;
        }
        MyersPattern {
            peq,
            m: pat.len(),
            high: 1u64 << (pat.len() - 1),
        }
    }

    /// Number of pattern characters (the distance against an empty text).
    pub(crate) fn len(&self) -> usize {
        self.m
    }

    /// Match mask of one text byte against the pattern.
    #[inline]
    pub(crate) fn eq_mask(&self, c: u8) -> u64 {
        self.peq[(c & 0x7f) as usize]
    }

    /// Score bit: bit `m - 1`, where the running distance lives.
    pub(crate) fn high_bit(&self) -> u64 {
        self.high
    }

    /// Exact Levenshtein distance of the pattern against `text` (ASCII).
    pub(crate) fn distance(&self, text: &[u8]) -> usize {
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = self.m;
        for &c in text {
            let eq = self.eq_mask(c);
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & self.high != 0 {
                score += 1;
            }
            if mh & self.high != 0 {
                score -= 1;
            }
            let ph = (ph << 1) | 1;
            let mh = mh << 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference DP for validating the bit-parallel recurrence.
    fn dp(a: &[u8], b: &[u8]) -> usize {
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        let mut cur = vec![0; b.len() + 1];
        for (i, &ca) in a.iter().enumerate() {
            cur[0] = i + 1;
            for (j, &cb) in b.iter().enumerate() {
                cur[j + 1] = (prev[j] + usize::from(ca != cb))
                    .min(cur[j] + 1)
                    .min(prev[j + 1] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    #[test]
    fn myers_matches_the_classic_dp() {
        let words: [&[u8]; 8] = [
            b"kitten",
            b"sitting",
            b"",
            b"a",
            b"levenshtein",
            b"meilenstein",
            b"die hard with a vengeance",
            b"jaws",
        ];
        for pat in words {
            if pat.is_empty() {
                continue;
            }
            let pre = MyersPattern::new(pat);
            for txt in words {
                assert_eq!(
                    pre.distance(txt),
                    dp(pat, txt),
                    "pattern {:?} text {:?}",
                    std::str::from_utf8(pat),
                    std::str::from_utf8(txt)
                );
            }
        }
    }

    #[test]
    fn full_width_pattern() {
        // Exactly 64 bytes: exercises the `1 << 63` high bit.
        let pat = [b'x'; 64];
        let pre = MyersPattern::new(&pat);
        assert_eq!(pre.distance(&pat), 0);
        assert_eq!(pre.distance(b""), 64);
        assert_eq!(pre.distance(&[b'x'; 63]), 1);
        assert_eq!(pre.distance(&[b'y'; 64]), 64);
        let mut one_sub = [b'x'; 64];
        one_sub[17] = b'z';
        assert_eq!(pre.distance(&one_sub), 1);
    }

    #[test]
    fn batch_appends_in_order() {
        let mut out = vec![99];
        GenericKernel.levenshtein_ascii_batch(b"flaw", &[b"lawn", b"flaw"], &mut out);
        assert_eq!(out, vec![99, 2, 0]);
    }
}
