//! Runtime-dispatched edit-distance kernels.
//!
//! One trait ([`EditKernel`]), two implementations: a portable scalar
//! kernel ([`generic`]) and a vectorised AVX2 kernel ([`avx2`], x86-64
//! only). Both run the *same integer dynamic program* — Myers'
//! bit-parallel Levenshtein — so the distances they produce, and every
//! `f64` similarity derived from them, are bit-identical regardless of
//! which implementation the dispatcher picks. That equivalence is the
//! contract that lets the rest of the pipeline keep its bit-reproducible
//! guarantee while the kernel choice varies per machine; the property
//! tests in `crates/sim/tests` enforce it on random ASCII and Unicode
//! inputs.
//!
//! Dispatch is decided once per process and cached: the first call to
//! [`active`] probes the CPU (and the `IMPRECISE_SIM_FORCE` environment
//! variable) and every later call returns the same kernel, so a run never
//! mixes implementations mid-flight.

pub mod generic;

#[cfg(target_arch = "x86_64")]
pub mod avx2;

use std::sync::OnceLock;

/// A batched one-vs-many Levenshtein kernel.
///
/// Implementations must return identical integers for identical inputs —
/// the dispatcher treats them as interchangeable.
pub trait EditKernel: Send + Sync {
    /// Stable implementation name (`"generic"`, `"avx2"`).
    fn name(&self) -> &'static str;

    /// Levenshtein distance of the ASCII pattern `a` (1..=64 bytes)
    /// against each ASCII text in `bs`, appended to `out` in order.
    ///
    /// Callers guarantee `a` and every text are ASCII and `a` is
    /// non-empty and at most 64 bytes; texts may have any length.
    fn levenshtein_ascii_batch(&self, a: &[u8], bs: &[&[u8]], out: &mut Vec<usize>);
}

/// The portable scalar kernel, always available. Property tests compare
/// every other kernel against this one.
pub fn generic_kernel() -> &'static dyn EditKernel {
    static GENERIC: generic::GenericKernel = generic::GenericKernel;
    &GENERIC
}

/// The fastest kernel the CPU supports, ignoring `IMPRECISE_SIM_FORCE`.
pub fn detected_kernel() -> &'static dyn EditKernel {
    #[cfg(target_arch = "x86_64")]
    if let Some(k) = avx2::Avx2Kernel::detect() {
        return k;
    }
    generic_kernel()
}

/// The process-wide active kernel.
///
/// Selection happens exactly once: `IMPRECISE_SIM_FORCE=generic` pins the
/// scalar kernel, `IMPRECISE_SIM_FORCE=native` (or any other value, or an
/// unset variable) selects the best detected ISA. The result is cached in
/// a `OnceLock`, so the choice is deterministic for the process lifetime
/// even if the environment later changes.
pub fn active() -> &'static dyn EditKernel {
    static ACTIVE: OnceLock<&'static dyn EditKernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        // lint:allow(sim-isa-dispatch, read once and cached in the OnceLock above; the selected kernel is bit-identical to every other kernel, so dispatch cannot affect results)
        match std::env::var("IMPRECISE_SIM_FORCE").as_deref() {
            Ok("generic") => generic_kernel(),
            _ => detected_kernel(),
        }
    })
}

/// Name of the process-wide active kernel (for stats and diagnostics).
pub fn active_name() -> &'static str {
    active().name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_is_cached_and_stable() {
        let first = active().name();
        for _ in 0..4 {
            assert_eq!(active().name(), first);
        }
    }

    #[test]
    fn detected_kernel_is_a_known_implementation() {
        let name = detected_kernel().name();
        assert!(
            name == "generic" || name == "avx2",
            "unexpected kernel {name}"
        );
    }

    #[test]
    fn kernels_agree_on_a_smoke_batch() {
        let bs: Vec<&[u8]> = vec![b"sitting", b"", b"kitten", b"kittens", b"xyz"];
        let mut generic_out = Vec::new();
        generic_kernel().levenshtein_ascii_batch(b"kitten", &bs, &mut generic_out);
        let mut detected_out = Vec::new();
        detected_kernel().levenshtein_ascii_batch(b"kitten", &bs, &mut detected_out);
        assert_eq!(generic_out, vec![3, 6, 0, 1, 6]);
        assert_eq!(generic_out, detected_out);
    }
}
