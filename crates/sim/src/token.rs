//! Token- and n-gram-based similarity.

use std::collections::BTreeSet;

/// Split a string into lowercase alphanumeric tokens.
pub fn tokenize(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// The token *set* of a string: [`tokenize`] deduplicated and ordered.
pub fn token_set(s: &str) -> BTreeSet<String> {
    tokenize(s).into_iter().collect()
}

/// Jaccard similarity of two precomputed token sets, in `[0, 1]`. This is
/// the set arithmetic behind [`jaccard_tokens`]; callers that cache
/// [`token_set`] per element get the same bits without re-tokenising.
pub fn jaccard_token_sets(sa: &BTreeSet<String>, sb: &BTreeSet<String>) -> f64 {
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(sb).count();
    let union = sa.union(sb).count();
    intersection as f64 / union as f64
}

/// Jaccard similarity of the token *sets* of two strings, in `[0, 1]`.
/// Two strings with no tokens at all are fully similar.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    jaccard_token_sets(&token_set(a), &token_set(b))
}

/// Dice coefficient over character trigrams of the lowercased input, in
/// `[0, 1]`. Strings shorter than three characters compare by equality of
/// their lowercase forms.
pub fn dice_trigram(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    dice_trigram_sets(&la, &trigram_set(&la), &lb, &trigram_set(&lb))
}

/// Dice coefficient from precomputed lowercase forms and trigram sets —
/// the arithmetic behind [`dice_trigram`], for callers that cache
/// [`trigram_set`] per element.
pub fn dice_trigram_sets(
    la: &str,
    ta: &BTreeSet<Vec<char>>,
    lb: &str,
    tb: &BTreeSet<Vec<char>>,
) -> f64 {
    if ta.is_empty() || tb.is_empty() {
        return if la == lb { 1.0 } else { 0.0 };
    }
    let intersection = ta.intersection(tb).count();
    2.0 * intersection as f64 / (ta.len() + tb.len()) as f64
}

/// Character trigram set of a string (empty for strings shorter than
/// three characters — callers fall back to equality there).
pub fn trigram_set(s: &str) -> BTreeSet<Vec<char>> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return BTreeSet::new();
    }
    chars.windows(3).map(|w| w.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Die Hard: With a Vengeance"),
            vec!["die", "hard", "with", "a", "vengeance"]
        );
        assert_eq!(
            tokenize("Mission: Impossible II"),
            vec!["mission", "impossible", "ii"]
        );
        assert_eq!(tokenize("  --  "), Vec::<String>::new());
        assert_eq!(tokenize("R2-D2"), vec!["r2", "d2"]);
    }

    #[test]
    fn jaccard_basic() {
        assert_eq!(jaccard_tokens("jaws", "jaws"), 1.0);
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("jaws", ""), 0.0);
        // {mission, impossible} vs {mission, impossible, ii} → 2/3.
        let s = jaccard_tokens("Mission Impossible", "Mission: Impossible II");
        assert!((s - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ignores_order_and_punctuation() {
        assert_eq!(jaccard_tokens("Hard Die", "Die, Hard!"), 1.0);
    }

    #[test]
    fn dice_trigram_behaviour() {
        assert_eq!(dice_trigram("jaws", "jaws"), 1.0);
        assert!(dice_trigram("jaws", "laws") > 0.0);
        assert_eq!(dice_trigram("ab", "ab"), 1.0); // short-string fallback
        assert_eq!(dice_trigram("ab", "cd"), 0.0);
        let near = dice_trigram("die hard", "die harder");
        let far = dice_trigram("die hard", "jaws 2");
        assert!(near > far);
    }

    #[test]
    fn measures_are_symmetric() {
        for (a, b) in [("jaws 2", "jaws"), ("die hard", "live free die hard")] {
            assert_eq!(jaccard_tokens(a, b), jaccard_tokens(b, a));
            assert_eq!(dice_trigram(a, b), dice_trigram(b, a));
        }
    }
}
