//! Property tests for the SIMD kernel contract: every kernel computes the
//! same integers as the scalar reference, on arbitrary ASCII and Unicode
//! input, so every derived `f64` similarity is bit-identical.
//!
//! `IMPRECISE_SIM_FORCE` selects the *process-wide* kernel (CI runs this
//! suite once per value); these tests additionally compare the explicit
//! `generic_kernel()` and `detected_kernel()` instances directly, so a
//! single run on an AVX2 machine still exercises both implementations
//! against each other.

use imprecise_sim::edit::levenshtein_batch_with;
use imprecise_sim::simd::{active, detected_kernel, generic_kernel};
use imprecise_sim::{
    levenshtein, levenshtein_batch, levenshtein_similarity, similarity_batch, PreparedTitle,
};
use proptest::prelude::*;

/// Reference two-row DP over Unicode scalars — independent of every
/// implementation under test.
fn reference_levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=bc.len()).collect();
    let mut cur = vec![0usize; bc.len() + 1];
    for (i, ca) in ac.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in bc.iter().enumerate() {
            cur[j + 1] = (prev[j] + usize::from(ca != cb))
                .min(cur[j] + 1)
                .min(prev[j + 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[bc.len()]
}

fn ascii_string(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..128, 0..=max_len)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

fn unicode_string(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x2FFF, 0..=max_len).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(char::from_u32)
            .collect::<String>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The single-pair entry point agrees with the reference DP on ASCII —
    /// this covers the Myers tier (pattern ≤ 64 bytes) and the byte DP.
    #[test]
    fn ascii_pair_matches_reference(a in ascii_string(90), b in ascii_string(90)) {
        prop_assert_eq!(levenshtein(&a, &b), reference_levenshtein(&a, &b));
    }

    /// ... and on arbitrary Unicode (the char DP tier).
    #[test]
    fn unicode_pair_matches_reference(a in unicode_string(40), b in unicode_string(40)) {
        prop_assert_eq!(levenshtein(&a, &b), reference_levenshtein(&a, &b));
    }

    /// Forced-generic, detected, and process-active kernels produce the
    /// same integers as each other and as the per-pair path, on batches of
    /// mixed ASCII texts.
    #[test]
    fn kernels_are_bit_identical_on_ascii_batches(
        a in ascii_string(64),
        bs in proptest::collection::vec(ascii_string(120), 0..24),
    ) {
        let refs: Vec<&str> = bs.iter().map(String::as_str).collect();
        let mut generic_out = Vec::new();
        levenshtein_batch_with(generic_kernel(), &a, &refs, &mut generic_out);
        let mut detected_out = Vec::new();
        levenshtein_batch_with(detected_kernel(), &a, &refs, &mut detected_out);
        let mut active_out = Vec::new();
        levenshtein_batch_with(active(), &a, &refs, &mut active_out);
        let pairwise: Vec<usize> = refs.iter().map(|b| reference_levenshtein(&a, b)).collect();
        prop_assert_eq!(&generic_out, &pairwise);
        prop_assert_eq!(&detected_out, &pairwise);
        prop_assert_eq!(&active_out, &pairwise);
        prop_assert_eq!(levenshtein_batch(&a, &refs), pairwise);
    }

    /// Batches containing Unicode take the scalar fallback per element but
    /// must still agree with the per-pair path exactly.
    #[test]
    fn kernels_are_bit_identical_on_mixed_batches(
        a in unicode_string(30),
        bs in proptest::collection::vec(unicode_string(50), 0..12),
    ) {
        let refs: Vec<&str> = bs.iter().map(String::as_str).collect();
        let mut generic_out = Vec::new();
        levenshtein_batch_with(generic_kernel(), &a, &refs, &mut generic_out);
        let mut detected_out = Vec::new();
        levenshtein_batch_with(detected_kernel(), &a, &refs, &mut detected_out);
        let pairwise: Vec<usize> = refs.iter().map(|b| reference_levenshtein(&a, b)).collect();
        prop_assert_eq!(&generic_out, &pairwise);
        prop_assert_eq!(&detected_out, &pairwise);
    }

    /// Derived f64 similarities are bit-identical between the batched and
    /// per-pair paths — the property the pipeline's determinism rests on.
    #[test]
    fn similarities_are_bit_identical(
        a in ascii_string(64),
        bs in proptest::collection::vec(ascii_string(80), 0..16),
    ) {
        let refs: Vec<&str> = bs.iter().map(String::as_str).collect();
        let batched = similarity_batch(&a, &refs);
        for (b, s) in refs.iter().zip(batched) {
            prop_assert_eq!(s.to_bits(), levenshtein_similarity(&a, b).to_bits());
        }
        let prep = PreparedTitle::new(&a);
        let titles = prep.similarity_batch(&refs);
        for (b, s) in refs.iter().zip(titles) {
            prop_assert_eq!(s.to_bits(), imprecise_sim::title_similarity(&a, b).to_bits());
        }
    }
}
