//! # imprecise-store — the durable versioned catalog store
//!
//! IMPrECISE's good-is-good-enough model (ROADMAP item 2) only pays off
//! if a half-finished, budgeted integration is never thrown away. This
//! crate is the persistence tier that guarantees it: a tiered storage
//! layer — the in-memory catalog in `imprecise` (core) in front, this
//! durable backend behind — whose durable form is one **append-only
//! segment file**. Every publish of a document version (an integrate, a
//! refine installment, a feedback application, a compaction) becomes
//! one appended record; recovery is a scan to the last valid record.
//!
//! ## What a publish record carries
//!
//! * the document **name** and **version**,
//! * the [`PxDoc`] arena, bit-exactly (see [`imprecise_pxml::codec`]) —
//!   `save → load → fingerprint` is bitwise-identical,
//! * the open [`RefineState`], if the version is still refinable, so a
//!   fresh process resumes enumeration exactly where this one stopped.
//!
//! A refine state points into its two *source* documents. Sources are
//! persisted once as content-addressed **blob records** (FNV-1a over
//! the encoded arena) and referenced by offset from every publish that
//! needs them: the blobs for a publish are always appended *before* the
//! publish record itself, so the references point backward into the
//! already-valid prefix and a torn tail can never orphan a publish.
//!
//! ## Crash safety
//!
//! See [`segment`](self) module docs for the frame format. The policy:
//! an interrupted append leaves a torn tail that [`Store::open`]
//! detects (incomplete frame or payload past EOF) and cleanly ignores —
//! the store reopens at the last fully-written version. Bytes that were
//! fully written but no longer match their checksum are *corruption*,
//! reported as [`StoreError::CorruptRecord`]; recovery never panics.
//!
//! The [`Durability`] knob picks when appends reach stable storage:
//! [`Durability::Always`] issues `fdatasync` on every publish (the
//! honest default the engine uses), [`Durability::OnClose`] defers to
//! [`Store::sync`]/drop for bulk loads.

mod segment;

use imprecise_integrate::codec::{decode_refine_state, encode_refine_state};
use imprecise_integrate::RefineState;
use imprecise_pxml::codec::{
    decode_doc, encode_doc, fnv1a, put_str, put_u64, put_u8, CodecError, Reader,
};
use imprecise_pxml::PxDoc;
use segment::Segment;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Payload tag of a catalog publish record.
const KIND_PUBLISH: u8 = 1;
/// Payload tag of a content-addressed source-document blob.
const KIND_BLOB: u8 = 2;

/// When appended records reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// `fdatasync` after every publish: a publish that returned `Ok`
    /// survives any crash. The engine's default.
    Always,
    /// Sync only on [`Store::sync`] and on drop: a crash may lose the
    /// unsynced suffix (but never tears what an earlier sync covered).
    OnClose,
}

/// A typed store failure. Recovery and appends never panic; every
/// failure mode — I/O, foreign or future file formats, corruption,
/// malformed encodings — surfaces here.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// The file exists but does not begin with the segment magic.
    BadHeader,
    /// The file is a segment of a format generation this build does not
    /// read.
    UnsupportedVersion(u32),
    /// A fully-written record's bytes no longer match its checksum (or
    /// its structure is impossible): the file was damaged after the
    /// fact. Distinct from a torn tail, which is recovered silently.
    CorruptRecord {
        /// Offset of the offending record's frame from file start.
        offset: u64,
        /// What was wrong with it.
        detail: &'static str,
    },
    /// A single record would exceed the frame format's 4 GiB payload
    /// bound.
    RecordTooLarge {
        /// The attempted payload size.
        len: usize,
    },
    /// A checksum-valid record failed to decode — damage that happens
    /// to preserve the checksum, or a logic error upstream.
    Codec(CodecError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadHeader => write!(f, "not an imprecise segment file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported segment format version {v}")
            }
            StoreError::CorruptRecord { offset, detail } => {
                write!(f, "corrupt record at offset {offset}: {detail}")
            }
            StoreError::RecordTooLarge { len } => {
                write!(
                    f,
                    "record payload of {len} bytes exceeds the frame format limit"
                )
            }
            StoreError::Codec(e) => write!(f, "undecodable record: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// One recovered catalog entry: the last published version of a name.
#[derive(Debug)]
pub struct RecoveredDoc {
    /// The version number the publish recorded.
    pub version: u64,
    /// The document, bit-identical to the one that was saved.
    pub doc: PxDoc,
    /// The open refinement state, re-attached to its (deduplicated)
    /// source documents — `None` when the version was exact.
    pub refine: Option<RefineState>,
}

/// Index entry: where a name's latest publish record lives.
#[derive(Debug, Clone, Copy)]
struct PublishEntry {
    version: u64,
    offset: u64,
}

/// The durable tier: an open segment file plus the in-memory offset
/// index rebuilt from it.
///
/// All methods take `&mut self`; the engine serialises access behind
/// its catalog lock (publishes must hit the store in catalog order
/// anyway, so finer-grained locking would buy nothing).
pub struct Store {
    seg: Segment,
    path: PathBuf,
    durability: Durability,
    /// name → latest publish. `BTreeMap` so [`Store::names`] (and thus
    /// recovery order) is deterministic.
    index: BTreeMap<String, PublishEntry>,
    /// content hash → offset of the blob record holding those bytes.
    /// Lookup only — never iterated — so ordering is irrelevant.
    blobs: HashMap<u64, u64>,
    /// content hash → already-decoded source document, so entries that
    /// share a source share one `Arc` after recovery, like they did
    /// before the restart. Lookup only.
    decoded: HashMap<u64, Arc<PxDoc>>,
    /// True when records were appended since the last sync.
    dirty: bool,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("durability", &self.durability)
            .field("names", &self.index.len())
            .field("blobs", &self.blobs.len())
            .finish()
    }
}

impl Store {
    /// Open (or create) the store at `path`, scanning the segment to
    /// the last valid record and rebuilding the offset index. A torn
    /// final record — the signature of a crash mid-append — is cleanly
    /// ignored; the store reopens at the last fully-written version.
    pub fn open(path: impl AsRef<Path>, durability: Durability) -> Result<Store, StoreError> {
        let path = path.as_ref().to_path_buf();
        let (seg, records) = Segment::open(&path)?;
        let mut index = BTreeMap::new();
        let mut blobs = HashMap::new();
        for rec in records {
            let mut r = Reader::new(&rec.payload);
            match r.take_u8("record kind")? {
                KIND_PUBLISH => {
                    let name = r.take_str("document name")?;
                    let version = r.take_u64("document version")?;
                    // The rest of the payload (arena, refine state) is
                    // decoded lazily by `load_publish`.
                    index.insert(
                        name,
                        PublishEntry {
                            version,
                            offset: rec.offset,
                        },
                    );
                }
                KIND_BLOB => {
                    let hash = r.take_u64("blob content hash")?;
                    blobs.insert(hash, rec.offset);
                }
                _ => {
                    return Err(StoreError::CorruptRecord {
                        offset: rec.offset,
                        detail: "unknown record kind",
                    })
                }
            }
        }
        Ok(Store {
            seg,
            path,
            durability,
            index,
            blobs,
            decoded: HashMap::new(),
            dirty: false,
        })
    }

    /// The file this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured durability policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Every document name with at least one published version, in
    /// sorted (deterministic) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// Latest published version of `name`, if any.
    pub fn latest_version(&self, name: &str) -> Option<u64> {
        self.index.get(name).map(|e| e.version)
    }

    /// Durably append one published version of `name`.
    ///
    /// If `refine` is open, its two source documents are persisted
    /// first as content-addressed blobs (skipped when an identical blob
    /// is already on file), then the publish record referencing them —
    /// so by the time the publish is on disk, everything it points at
    /// is inside the file's valid prefix. Under [`Durability::Always`]
    /// the append is `fdatasync`ed before returning.
    pub fn append_publish(
        &mut self,
        name: &str,
        version: u64,
        doc: &PxDoc,
        refine: Option<&RefineState>,
    ) -> Result<(), StoreError> {
        let mut payload = Vec::new();
        put_u8(&mut payload, KIND_PUBLISH);
        put_str(&mut payload, name);
        put_u64(&mut payload, version);
        encode_doc(doc, &mut payload);
        match refine {
            None => put_u8(&mut payload, 0),
            Some(state) => {
                put_u8(&mut payload, 1);
                let (src_a, src_b) = state.sources();
                for src in [src_a, src_b] {
                    let (hash, offset) = self.ensure_blob(src)?;
                    put_u64(&mut payload, hash);
                    put_u64(&mut payload, offset);
                }
                encode_refine_state(state, &mut payload);
            }
        }
        let offset = self.seg.append(&payload)?;
        self.dirty = true;
        if self.durability == Durability::Always {
            self.sync()?;
        }
        self.index
            .insert(name.to_string(), PublishEntry { version, offset });
        Ok(())
    }

    /// Append `doc` as a content-addressed blob unless an identical one
    /// is already on file; returns its content hash and record offset.
    fn ensure_blob(&mut self, doc: &Arc<PxDoc>) -> Result<(u64, u64), StoreError> {
        let mut bytes = Vec::new();
        encode_doc(doc, &mut bytes);
        let hash = fnv1a(&bytes);
        if let Some(&offset) = self.blobs.get(&hash) {
            return Ok((hash, offset));
        }
        let mut payload = Vec::with_capacity(9 + bytes.len());
        put_u8(&mut payload, KIND_BLOB);
        put_u64(&mut payload, hash);
        payload.extend_from_slice(&bytes);
        let offset = self.seg.append(&payload)?;
        self.dirty = true;
        self.blobs.insert(hash, offset);
        // Newly written sources are usually about to be loaded again by
        // a recovery or shared by the next publish; cache the decoded
        // form under the same Arc the caller holds.
        self.decoded.insert(hash, Arc::clone(doc));
        Ok((hash, offset))
    }

    /// Load the latest published version of `name`, or `None` if the
    /// store has never seen it. The returned document is bit-identical
    /// to the one saved; an open refine state comes back attached to
    /// its sources and resumes enumeration bit-for-bit.
    pub fn load_publish(&mut self, name: &str) -> Result<Option<RecoveredDoc>, StoreError> {
        let Some(entry) = self.index.get(name).copied() else {
            return Ok(None);
        };
        let payload = self.seg.read_record(entry.offset)?;
        let mut r = Reader::new(&payload);
        match r.take_u8("record kind")? {
            KIND_PUBLISH => {}
            _ => {
                return Err(StoreError::CorruptRecord {
                    offset: entry.offset,
                    detail: "publish offset does not hold a publish record",
                })
            }
        }
        let stored_name = r.take_str("document name")?;
        let version = r.take_u64("document version")?;
        if stored_name != name || version != entry.version {
            return Err(StoreError::CorruptRecord {
                offset: entry.offset,
                detail: "publish record does not match the index",
            });
        }
        let doc = decode_doc(&mut r)?;
        let refine = match r.take_u8("refine-state tag")? {
            0 => None,
            1 => {
                let hash_a = r.take_u64("source-a hash")?;
                let offset_a = r.take_u64("source-a offset")?;
                let hash_b = r.take_u64("source-b hash")?;
                let offset_b = r.take_u64("source-b offset")?;
                let src_a = self.load_blob(hash_a, offset_a)?;
                let src_b = self.load_blob(hash_b, offset_b)?;
                Some(decode_refine_state(
                    &mut r,
                    (src_a, src_b),
                    doc.arena_len(),
                )?)
            }
            _ => return Err(r.err("refine-state tag").into()),
        };
        r.finish()?;
        #[cfg(feature = "strict-invariants")]
        imprecise_integrate::verify::shadow_check_state(&doc, refine.as_ref(), "store recovery");
        Ok(Some(RecoveredDoc {
            version,
            doc,
            refine,
        }))
    }

    /// Load (or fetch from the decode cache) the source blob at
    /// `offset`, verifying both the stored and the recomputed content
    /// hash against `hash`.
    fn load_blob(&mut self, hash: u64, offset: u64) -> Result<Arc<PxDoc>, StoreError> {
        if let Some(doc) = self.decoded.get(&hash) {
            return Ok(Arc::clone(doc));
        }
        let payload = self.seg.read_record(offset)?;
        let mut r = Reader::new(&payload);
        match r.take_u8("record kind")? {
            KIND_BLOB => {}
            _ => {
                return Err(StoreError::CorruptRecord {
                    offset,
                    detail: "blob offset does not hold a blob record",
                })
            }
        }
        let stored_hash = r.take_u64("blob content hash")?;
        if stored_hash != hash || fnv1a(&payload[9..]) != hash {
            return Err(StoreError::CorruptRecord {
                offset,
                detail: "blob content hash mismatch",
            });
        }
        let doc = Arc::new(decode_doc(&mut r)?);
        r.finish()?;
        self.decoded.insert(hash, Arc::clone(&doc));
        Ok(doc)
    }

    /// Flush every appended record to stable storage. A no-op when
    /// nothing was appended since the last sync.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.dirty {
            self.seg.sync()?;
            self.dirty = false;
        }
        Ok(())
    }
}

impl Drop for Store {
    /// Best-effort final sync for [`Durability::OnClose`] stores. Drop
    /// cannot report failure; callers that must observe sync errors
    /// call [`Store::sync`] explicitly before dropping.
    fn drop(&mut self) {
        let _ = self.sync();
    }
}
