//! The append-only segment file: the store's one durable artefact.
//!
//! ## On-disk format
//!
//! ```text
//! ┌────────────────────────────┐
//! │ magic  "IMPXSEG1"  (8 B)   │  header, written once at creation
//! │ format version u32 LE      │
//! ├────────────────────────────┤
//! │ payload length  u32 LE     │  ┐
//! │ FNV-1a checksum u64 LE     │  │ one record frame,
//! │ payload (length bytes)     │  ┘ repeated to EOF
//! ├────────────────────────────┤
//! │ …                          │
//! └────────────────────────────┘
//! ```
//!
//! The first payload byte is a record-kind tag interpreted by the typed
//! layer in `lib.rs`; the segment itself treats payloads as opaque.
//!
//! ## Crash safety
//!
//! Records are only ever appended, so the one thing a crash can damage
//! is the tail. [`Segment::open`] rebuilds the record index by scanning
//! frame to frame and distinguishes two failure shapes:
//!
//! * **Torn tail** — the final frame is incomplete (its header or its
//!   declared payload extends past EOF). This is the signature of an
//!   interrupted append: the record never finished writing, so it is
//!   *cleanly ignored* and the file is truncated back to the last fully
//!   valid record. Nothing that was ever durably written is lost.
//! * **Corrupt record** — a frame is fully contained in the file but
//!   its payload does not match its checksum. Appends never produce
//!   this, so it means the bytes changed after they were written
//!   (bit rot, a buggy tool, a hostile edit). That is not safely
//!   ignorable — the damage could be anywhere, not just the tail — so
//!   it surfaces as a typed [`StoreError::CorruptRecord`], never a
//!   panic and never a silent skip.

use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: "IMPX" segment, format generation 1.
pub(crate) const MAGIC: &[u8; 8] = b"IMPXSEG1";
/// On-disk format version (bumped on incompatible layout changes).
/// Version 2: refine-state payloads carry the blocking mode and the
/// pruned/windowed pair counters.
pub(crate) const FORMAT_VERSION: u32 = 2;
/// Header size: magic + version.
pub(crate) const HEADER_LEN: u64 = 12;
/// Frame overhead per record: payload length + checksum.
pub(crate) const FRAME_LEN: u64 = 12;

/// A record located during the open-time scan: its payload plus where
/// its frame starts (the offset later reads address it by).
pub(crate) struct ScannedRecord {
    /// Offset of the record's frame (length field) from file start.
    pub offset: u64,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// The open segment file plus the end of its valid prefix.
pub(crate) struct Segment {
    file: File,
    /// End of the last fully valid record == the next append offset.
    len: u64,
}

impl Segment {
    /// Open (or create) the segment at `path`, scanning to the last
    /// valid record. Returns the segment positioned for appends plus
    /// every valid record in file order. A torn tail is truncated away;
    /// a checksum-mismatched record that is fully contained in the file
    /// is a [`StoreError::CorruptRecord`].
    pub(crate) fn open(path: &Path) -> Result<(Segment, Vec<ScannedRecord>), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN {
            // Fresh file, or a crash mid-header-write (no record can
            // have been written yet either way): only accept bytes that
            // are a prefix of the real header, then (re)write it whole.
            let mut existing = Vec::new();
            file.read_to_end(&mut existing)?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            if existing != header[..existing.len()] {
                return Err(StoreError::BadHeader);
            }
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header)?;
            file.sync_data()?;
            return Ok((
                Segment {
                    file,
                    len: HEADER_LEN,
                },
                Vec::new(),
            ));
        }
        let mut bytes = Vec::with_capacity(file_len as usize);
        file.read_to_end(&mut bytes)?;
        if &bytes[..8] != MAGIC {
            return Err(StoreError::BadHeader);
        }
        // lint:allow(unwrap-in-lib, slice is exactly 4 bytes)
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let mut records = Vec::new();
        let mut pos = HEADER_LEN as usize;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < FRAME_LEN as usize {
                // Incomplete frame header: an append died before the
                // frame was fully written. Clean torn tail.
                break;
            }
            // lint:allow(unwrap-in-lib, slice is exactly 4 bytes)
            let payload_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            // lint:allow(unwrap-in-lib, slice is exactly 8 bytes)
            let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
            let payload_at = pos + FRAME_LEN as usize;
            let Some(end) = payload_at.checked_add(payload_len) else {
                break; // length overflows: cannot be a finished append
            };
            if end > bytes.len() {
                // Declared payload extends past EOF: clean torn tail.
                break;
            }
            let payload = &bytes[payload_at..end];
            if imprecise_pxml::codec::fnv1a(payload) != checksum {
                return Err(StoreError::CorruptRecord {
                    offset: pos as u64,
                    detail: "payload checksum mismatch",
                });
            }
            records.push(ScannedRecord {
                offset: pos as u64,
                payload: payload.to_vec(),
            });
            pos = end;
        }
        let valid_len = pos as u64;
        if valid_len < file_len {
            // Make the ignored torn tail physical so a later append
            // cannot leave stale bytes dangling after the new record.
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        Ok((
            Segment {
                file,
                len: valid_len,
            },
            records,
        ))
    }

    /// Append one record; returns the offset its frame was written at.
    /// The frame is assembled in memory and written with a single
    /// `write_all`, so a crash leaves at worst a torn tail that the
    /// next [`open`](Self::open) trims.
    pub(crate) fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let offset = self.len;
        let payload_len = u32::try_from(payload.len())
            .map_err(|_| StoreError::RecordTooLarge { len: payload.len() })?;
        let mut frame = Vec::with_capacity(FRAME_LEN as usize + payload.len());
        frame.extend_from_slice(&payload_len.to_le_bytes());
        frame.extend_from_slice(&imprecise_pxml::codec::fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(offset)
    }

    /// Read back and re-verify the record whose frame starts at
    /// `offset` (as returned by [`append`](Self::append) or reported by
    /// the open-time scan).
    pub(crate) fn read_record(&mut self, offset: u64) -> Result<Vec<u8>, StoreError> {
        if offset + FRAME_LEN > self.len {
            return Err(StoreError::CorruptRecord {
                offset,
                detail: "record offset past valid segment length",
            });
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let mut frame_header = [0u8; FRAME_LEN as usize];
        self.file.read_exact(&mut frame_header)?;
        // lint:allow(unwrap-in-lib, slice is exactly 4 bytes)
        let payload_len = u32::from_le_bytes(frame_header[..4].try_into().unwrap()) as u64;
        // lint:allow(unwrap-in-lib, slice is exactly 8 bytes)
        let checksum = u64::from_le_bytes(frame_header[4..12].try_into().unwrap());
        if offset + FRAME_LEN + payload_len > self.len {
            return Err(StoreError::CorruptRecord {
                offset,
                detail: "record payload past valid segment length",
            });
        }
        let mut payload = vec![0u8; payload_len as usize];
        self.file.read_exact(&mut payload)?;
        if imprecise_pxml::codec::fnv1a(&payload) != checksum {
            return Err(StoreError::CorruptRecord {
                offset,
                detail: "payload checksum mismatch",
            });
        }
        Ok(payload)
    }

    /// Flush written records to stable storage (`fdatasync`).
    pub(crate) fn sync(&self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }
}
