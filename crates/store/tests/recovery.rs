//! Recovery fault-injection suite: crash shapes against the segment.
//!
//! * Torn tail — the file truncated at **every byte offset** of the
//!   final record — must reopen cleanly at the previous version.
//! * A flipped payload byte must surface as a typed
//!   [`StoreError::CorruptRecord`], never a panic.
//!
//! Run with `--features strict-invariants` to additionally shadow-check
//! every recovered document and frontier with the deep verifier.

use imprecise_integrate::{integrate_px, IntegrationOptions, RefineOptions};
use imprecise_oracle::Oracle;
use imprecise_pxml::{from_xml, PxDoc};
use imprecise_store::{Durability, RecoveredDoc, Store, StoreError};
use imprecise_xmlkit::parse;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique scratch file under the system temp dir, removed on drop.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "imprecise-store-{tag}-{}-{n}.seg",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        ScratchFile(path)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn sources() -> (Arc<PxDoc>, Arc<PxDoc>) {
    let a = parse(
        "<addressbook>\
         <person><nm>John</nm><tel>1111</tel></person>\
         <person><nm>Jon</nm><tel>2222</tel></person>\
         <person><nm>Johnny</nm><tel>3333</tel></person>\
         </addressbook>",
    )
    .expect("valid xml");
    let b = parse(
        "<addressbook>\
         <person><nm>John</nm><tel>4444</tel></person>\
         <person><nm>Jhon</nm><tel>5555</tel></person>\
         <person><nm>Jonny</nm><tel>6666</tel></person>\
         </addressbook>",
    )
    .expect("valid xml");
    (Arc::new(from_xml(&a)), Arc::new(from_xml(&b)))
}

/// Two publishes of "db": v1 exact, v2 budgeted with open refine state.
/// Returns (bytes of the segment, file length right after v1, the two
/// published docs).
fn two_version_segment(scratch: &ScratchFile) -> (Vec<u8>, u64, PxDoc, PxDoc) {
    let srcs = sources();
    let oracle = Oracle::uninformed();
    let exact = integrate_px(
        &srcs.0,
        &srcs.1,
        &oracle,
        None,
        &IntegrationOptions::default(),
    )
    .expect("integrates");
    let mut budgeted = integrate_px(
        &srcs.0,
        &srcs.1,
        &oracle,
        None,
        &IntegrationOptions {
            max_matchings_per_component: 2,
            ..IntegrationOptions::default()
        },
    )
    .expect("integrates");
    let state = budgeted
        .detach_refine_state()
        .expect("test premise: the budget must truncate");

    let mut store = Store::open(&scratch.0, Durability::Always).expect("opens");
    store
        .append_publish("db", 1, &exact.doc, None)
        .expect("publishes v1");
    let len_after_v1 = std::fs::metadata(&scratch.0).expect("stat").len();
    store
        .append_publish("db", 2, &budgeted.doc, Some(&state))
        .expect("publishes v2");
    drop(store);
    let bytes = std::fs::read(&scratch.0).expect("read segment");
    (bytes, len_after_v1, exact.doc, budgeted.doc)
}

#[test]
fn save_load_fingerprint_is_bitwise_identical() {
    let scratch = ScratchFile::new("roundtrip");
    let (_, _, v1_doc, v2_doc) = two_version_segment(&scratch);
    let mut store = Store::open(&scratch.0, Durability::Always).expect("reopens");
    assert_eq!(store.names().collect::<Vec<_>>(), vec!["db"]);
    assert_eq!(store.latest_version("db"), Some(2));
    let RecoveredDoc {
        version,
        doc,
        refine,
    } = store
        .load_publish("db")
        .expect("loads")
        .expect("db is on file");
    assert_eq!(version, 2);
    assert_eq!(doc.fingerprint(), v2_doc.fingerprint());
    assert!(refine.is_some(), "open refine state must be recovered");
    // The exact v1 arena also survived bit-for-bit in history.
    assert_ne!(v1_doc.fingerprint(), v2_doc.fingerprint());
}

#[test]
fn recovered_refine_state_resumes_bit_for_bit() {
    let scratch = ScratchFile::new("resume");
    let (_, _, v1_doc, _) = two_version_segment(&scratch);
    let mut store = Store::open(&scratch.0, Durability::Always).expect("reopens");
    let recovered = store
        .load_publish("db")
        .expect("loads")
        .expect("db is on file");
    let state = recovered.refine.expect("open refine state");
    let oracle = Oracle::uninformed();
    let mut outcome =
        imprecise_integrate::IntegrationOutcome::with_refine_state(recovered.doc, state);
    while outcome.is_refinable() {
        outcome
            .refine(&oracle, None, &RefineOptions::to_exhaustive())
            .expect("refines");
    }
    // v1 was the one-shot exhaustive run of the same sources: refining
    // the recovered budgeted state to exhaustion converges to it.
    assert_eq!(outcome.doc.fingerprint(), v1_doc.fingerprint());
}

#[test]
fn truncation_at_every_offset_of_the_final_records_recovers_v1() {
    let scratch = ScratchFile::new("torn");
    let (bytes, len_after_v1, v1_doc, _) = two_version_segment(&scratch);
    let torn = ScratchFile::new("torn-cut");
    // Everything appended after v1 (source blobs + the v2 publish) is
    // the crash window: cutting anywhere inside it must reopen at v1
    // with nothing lost and nothing torn left behind.
    for cut in len_after_v1 as usize..bytes.len() {
        std::fs::write(&torn.0, &bytes[..cut]).expect("write truncated copy");
        let mut store = Store::open(&torn.0, Durability::Always)
            .unwrap_or_else(|e| panic!("truncation at {cut} must reopen cleanly, got {e}"));
        assert_eq!(
            store.latest_version("db"),
            Some(1),
            "truncation at {cut} must recover the previous version"
        );
        let recovered = store
            .load_publish("db")
            .expect("loads v1")
            .expect("v1 is on file");
        assert_eq!(recovered.version, 1);
        assert_eq!(recovered.doc.fingerprint(), v1_doc.fingerprint());
        assert!(recovered.refine.is_none(), "v1 was exact");
    }
}

#[test]
fn reopened_torn_store_accepts_new_publishes() {
    let scratch = ScratchFile::new("torn-append");
    let (bytes, len_after_v1, v1_doc, v2_doc) = two_version_segment(&scratch);
    let torn = ScratchFile::new("torn-append-cut");
    // Cut mid-way through the v2 tail, reopen, and re-publish v2: the
    // stale half-record must not bleed into the fresh append.
    let cut = (len_after_v1 as usize + bytes.len()) / 2;
    std::fs::write(&torn.0, &bytes[..cut]).expect("write truncated copy");
    {
        let mut store = Store::open(&torn.0, Durability::Always).expect("reopens");
        assert_eq!(store.latest_version("db"), Some(1));
        store
            .append_publish("db", 2, &v2_doc, None)
            .expect("re-publishes v2");
    }
    let mut store = Store::open(&torn.0, Durability::Always).expect("reopens again");
    assert_eq!(store.latest_version("db"), Some(2));
    let recovered = store
        .load_publish("db")
        .expect("loads")
        .expect("db is on file");
    assert_eq!(recovered.doc.fingerprint(), v2_doc.fingerprint());
    assert_ne!(recovered.doc.fingerprint(), v1_doc.fingerprint());
}

/// Frame starts of every record in segment order (a test-side scan
/// mirroring the store's: [u32 len][u64 checksum][payload]).
fn frame_offsets(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut offsets = Vec::new();
    let mut pos = 12; // header
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let end = pos + 12 + len;
        if end > bytes.len() {
            break;
        }
        offsets.push((pos, len));
        pos = end;
    }
    offsets
}

#[test]
fn flipped_payload_byte_is_a_typed_corrupt_record_error() {
    let scratch = ScratchFile::new("flip");
    let (bytes, _, _, _) = two_version_segment(&scratch);
    let (last_frame, last_len) = *frame_offsets(&bytes).last().expect("segment has records");
    let corrupted = ScratchFile::new("flip-cut");
    // Flip a spread of payload bytes of the final record (first, last,
    // and every 97th in between): each flip must be caught by the
    // checksum and reported as CorruptRecord — not a panic, not a
    // silent skip.
    let payload_start = last_frame + 12;
    let positions: Vec<usize> = (0..last_len)
        .step_by(97)
        .chain([last_len - 1])
        .map(|i| payload_start + i)
        .collect();
    for at in positions {
        let mut copy = bytes.clone();
        copy[at] ^= 0x40;
        std::fs::write(&corrupted.0, &copy).expect("write corrupted copy");
        match Store::open(&corrupted.0, Durability::Always) {
            Err(StoreError::CorruptRecord { offset, .. }) => {
                assert_eq!(offset, last_frame as u64, "flip at byte {at}");
            }
            Err(other) => panic!("flip at byte {at}: expected CorruptRecord, got {other}"),
            Ok(_) => panic!("flip at byte {at}: corruption must not open cleanly"),
        }
    }
}

#[test]
fn foreign_file_is_a_bad_header_not_a_panic() {
    let scratch = ScratchFile::new("foreign");
    std::fs::write(&scratch.0, b"<xml>this is not a segment file</xml>").expect("write");
    match Store::open(&scratch.0, Durability::Always) {
        Err(StoreError::BadHeader) => {}
        Err(other) => panic!("expected BadHeader, got {other}"),
        Ok(_) => panic!("a foreign file must not open as a store"),
    }
}

#[test]
fn on_close_durability_syncs_on_drop() {
    let scratch = ScratchFile::new("onclose");
    let (_, _, v1_doc, _) = two_version_segment(&scratch);
    let second = ScratchFile::new("onclose-2");
    {
        let mut store = Store::open(&second.0, Durability::OnClose).expect("opens");
        store
            .append_publish("db", 1, &v1_doc, None)
            .expect("publishes");
    } // drop syncs
    let mut store = Store::open(&second.0, Durability::OnClose).expect("reopens");
    let recovered = store
        .load_publish("db")
        .expect("loads")
        .expect("db is on file");
    assert_eq!(recovered.doc.fingerprint(), v1_doc.fingerprint());
}
