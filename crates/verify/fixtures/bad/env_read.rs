// lint-fixture-path: crates/query/src/fixture.rs
pub fn parallelism() -> usize {
    match std::env::var("IMPRECISE_THREADS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}
