// lint-fixture-path: crates/integrate/src/matching.rs
pub fn total_weight(weights: &[f64]) -> f64 {
    // Data-dependent order, no canonical-order justification.
    weights.iter().copied().sum::<f64>()
}
