// lint-fixture-path: crates/integrate/src/fixture.rs
use std::collections::HashMap;

pub fn emit(pairs: &[(u64, f64)]) -> Vec<u64> {
    let mut weights: HashMap<u64, f64> = HashMap::new();
    for (id, w) in pairs {
        weights.insert(*id, *w);
    }
    // Hash-ordered iteration feeding output: the finding.
    weights.keys().copied().collect()
}
