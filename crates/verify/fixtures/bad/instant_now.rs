// lint-fixture-path: crates/integrate/src/fixture.rs
use std::time::Instant;

pub fn budget_elapsed(limit_ms: u128) -> bool {
    let start = Instant::now();
    start.elapsed().as_millis() > limit_ms
}
