// lint-fixture-path: crates/integrate/src/fixture.rs
use rand::thread_rng;
use rand::Rng;

pub fn jitter() -> f64 {
    thread_rng().gen_range(0.0..1.0)
}
