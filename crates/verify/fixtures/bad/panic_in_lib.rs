// lint-fixture-path: crates/xmlkit/src/fixture.rs
pub fn decode(tag: u8) -> &'static str {
    match tag {
        0 => "elem",
        1 => "text",
        _ => panic!("bad tag {tag}"),
    }
}
