// lint-fixture-path: crates/query/src/fixture.rs
pub fn rank(mut probs: Vec<f64>) -> Vec<f64> {
    probs.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    probs
}
