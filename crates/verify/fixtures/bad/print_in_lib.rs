// lint-fixture-path: crates/core/src/fixture.rs
pub fn report(step: usize) {
    eprintln!("refine step {step}");
}
