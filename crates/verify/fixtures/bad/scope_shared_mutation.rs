// lint-fixture-path: crates/integrate/src/fixture.rs
use std::sync::Mutex;

pub fn fan_out(items: &[u32]) -> Vec<u32> {
    let out = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for chunk in items.chunks(2) {
            scope.spawn(|| {
                // Push order depends on worker timing: the finding.
                out.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(chunk);
            });
        }
    });
    out.into_inner().unwrap_or_else(|e| e.into_inner())
}
