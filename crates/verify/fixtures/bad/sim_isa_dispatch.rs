// lint-fixture-path: crates/sim/src/simd/fixture.rs
pub fn pick_kernel() -> &'static str {
    if std::is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "generic"
    }
}
