// lint-fixture-path: crates/sim/src/simd/fixture.rs
pub fn distance(a: &[u8]) -> usize {
    // An unannotated unsafe block in kernel code: the safety proof is
    // missing, so the lint must flag it.
    unsafe { *a.as_ptr() as usize }
}
