// lint-fixture-path: crates/pxml/src/fixture.rs
use std::time::SystemTime;

pub fn stamp() -> u64 {
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
