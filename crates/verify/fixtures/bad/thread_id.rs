// lint-fixture-path: crates/core/src/fixture.rs
pub fn worker_key() -> String {
    format!("{:?}", std::thread::current().id())
}
