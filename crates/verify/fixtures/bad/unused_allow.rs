// lint-fixture-path: crates/pxml/src/fixture.rs
pub fn add(a: u32, b: u32) -> u32 {
    // lint:allow(unwrap-in-lib, nothing here unwraps)
    a + b
}
