// lint-fixture-path: crates/pxml/src/fixture.rs
pub fn first(items: &[u32]) -> u32 {
    *items.first().unwrap()
}
