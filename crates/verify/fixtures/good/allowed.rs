// lint-fixture-path: crates/pxml/src/fixture.rs
//! Every hazard here carries a reasoned lint:allow, so the file has
//! findings but zero unallowed ones.
pub fn root_child(children: &[u32]) -> u32 {
    // lint:allow(unwrap-in-lib, validate() guarantees the root keeps one child)
    *children.first().unwrap()
}

pub fn decode(tag: u8) -> &'static str {
    match tag {
        0 => "elem",
        _ => unreachable!("tags are 0 by construction"), // lint:allow(panic-in-lib, tag enum has one variant today)
    }
}
