// lint-fixture-path: crates/integrate/src/fixture.rs
//! A file the lint should pass untouched: ordered collections, typed
//! errors, sorted accumulation.
use std::collections::BTreeMap;

pub fn emit(pairs: &[(u64, f64)]) -> Result<Vec<u64>, String> {
    let mut weights: BTreeMap<u64, f64> = BTreeMap::new();
    for (id, w) in pairs {
        weights.insert(*id, *w);
    }
    if weights.is_empty() {
        return Err("no pairs".to_owned());
    }
    Ok(weights.keys().copied().collect())
}
