// lint-fixture-path: crates/core/src/fixture.rs
//! Hazards that appear only in comments, doc examples, and string
//! literals must not fire:
//!
//! ```
//! let t = std::time::Instant::now(); // doc example, not library code
//! let v = maybe.unwrap();
//! ```
pub fn describe() -> &'static str {
    // A comment mentioning weights.keys() and thread_rng() is prose.
    "call .unwrap() at your own risk; panic!(...) lives in strings"
}

pub fn raw() -> &'static str {
    r#"Instant::now() inside a raw string with a "quote" in it"#
}
