// lint-fixture-path: crates/query/src/fixture.rs
//! Hazards confined to #[cfg(test)] are invisible to the lint.
pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn doubles() {
        let mut seen: HashMap<u32, u32> = HashMap::new();
        seen.insert(1, double(1));
        for (k, v) in seen.iter() {
            assert_eq!(*v, k * 2, "{:?}", std::time::Instant::now());
        }
        let first = seen.values().next().unwrap();
        assert_eq!(*first, 2);
    }
}
