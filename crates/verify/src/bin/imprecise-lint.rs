//! `imprecise-lint` — scan the workspace for determinism/robustness
//! hazards. See `imprecise-verify`'s crate docs for the rule model.
//!
//! Usage:
//!
//! ```text
//! imprecise-lint [--root DIR] [--format text|json] [--show-allowed]
//! imprecise-lint --list-rules
//! ```
//!
//! Exit status: 0 when every finding is covered by a reasoned
//! `lint:allow`, 1 when unallowed findings remain, 2 on usage or I/O
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

use imprecise_verify::{find_workspace_root, lint_workspace, rules, to_json};

fn main() -> ExitCode {
    let mut format = String::from("text");
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut show_allowed = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => return usage("--format takes `text` or `json`"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root takes a directory"),
            },
            "--list-rules" => list_rules = true,
            "--show-allowed" => show_allowed = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in rules::RULES {
            println!("{}\n  what:  {}", rule.id, rule.summary);
            println!("  where: {}", rule.scope);
            println!(
                "  why:   {}\n",
                rule.rationale
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => return usage("cannot locate workspace root; pass --root"),
    };

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let unallowed: Vec<_> = findings.iter().filter(|f| f.allowed.is_none()).collect();

    if format == "json" {
        print!("{}", to_json(&findings));
    } else {
        for f in &findings {
            if f.allowed.is_none() || show_allowed {
                println!("{f}");
            }
        }
        let allowed = findings.len() - unallowed.len();
        println!(
            "imprecise-lint: {} finding(s), {} allowed, {} unallowed",
            findings.len(),
            allowed,
            unallowed.len()
        );
    }

    if unallowed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("imprecise-lint: {problem}");
    }
    eprintln!(
        "usage: imprecise-lint [--root DIR] [--format text|json] [--show-allowed] [--list-rules]"
    );
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
