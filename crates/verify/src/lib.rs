//! `imprecise-verify` — the correctness-tooling crate.
//!
//! Home of **`imprecise-lint`**, a dependency-free static pass that
//! scans the workspace's library code for determinism and robustness
//! hazards before they can break the pipeline's bit-identical
//! guarantees (serial == parallel, budgeted-then-refined == one-shot,
//! splice/compact invisible to fingerprints).
//!
//! The design is deliberately modest: a hand-rolled scanner blanks
//! comments, string literals, and `#[cfg(test)]` modules
//! ([`scrub`]), then substring-level rules ([`rules`]) run over the
//! remaining code text. That is not a type checker — it cannot prove
//! absence of nondeterminism — but it reliably catches the textual
//! shapes every known hazard class in this codebase takes, and it
//! runs in milliseconds with zero dependencies.
//!
//! Suppressions are inline and must carry a reason:
//!
//! ```text
//! let root = doc.root(); // lint:allow(expect-in-lib, parser guarantees a root)
//! ```
//!
//! A standalone `// lint:allow(rule, reason)` comment applies to the
//! next code line. Unused or reason-less allows are findings
//! themselves (`unused-allow`), so the allowlist can only shrink.

pub mod rules;
pub mod scrub;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, allowed or not.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// `Some(reason)` when a `lint:allow` suppressed this finding.
    pub allowed: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.allowed {
            Some(reason) => write!(
                f,
                "{}:{}: [{}] allowed ({reason}): {}",
                self.path, self.line, self.rule, self.message
            ),
            None => write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            ),
        }
    }
}

/// Where a file sits in the workspace — drives rule applicability.
#[derive(Debug, Clone)]
pub struct FileRole {
    pub rel_path: String,
    pub crate_name: String,
    pub is_bin: bool,
}

impl FileRole {
    /// Classify a workspace-relative path like
    /// `crates/integrate/src/matching.rs`.
    pub fn from_rel_path(rel: &str) -> FileRole {
        let rel = rel.replace('\\', "/");
        let mut crate_name = String::new();
        if let Some(rest) = rel.strip_prefix("crates/") {
            if let Some((name, _)) = rest.split_once('/') {
                crate_name = name.to_owned();
            }
        }
        let is_bin = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
        FileRole {
            rel_path: rel,
            crate_name,
            is_bin,
        }
    }
}

/// Lint one source text as if it lived at `rel_path`. This is the seam
/// the fixture self-tests use.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let role = FileRole::from_rel_path(rel_path);
    let scrubbed = scrub::scrub(source);
    rules::check_file(&role, &scrubbed)
}

/// Errors from the filesystem walk.
#[derive(Debug)]
pub struct LintIoError {
    pub path: PathBuf,
    pub source: std::io::Error,
}

impl fmt::Display for LintIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lint: cannot read {}: {}",
            self.path.display(),
            self.source
        )
    }
}

/// Collect every `crates/*/src/**/*.rs` under `root`, sorted for
/// deterministic report order. The `shims/` stand-ins and the lint's
/// own `fixtures/` corpus are outside this glob by construction.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, LintIoError> {
    let crates_dir = root.join("crates");
    let mut crate_dirs = Vec::new();
    let entries = std::fs::read_dir(&crates_dir).map_err(|source| LintIoError {
        path: crates_dir.clone(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintIoError {
            path: crates_dir.clone(),
            source,
        })?;
        let src = entry.path().join("src");
        if src.is_dir() {
            crate_dirs.push(src);
        }
    }
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        collect_rs(&dir, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintIoError> {
    let entries = std::fs::read_dir(dir).map_err(|source| LintIoError {
        path: dir.to_owned(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintIoError {
            path: dir.to_owned(),
            source,
        })?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, LintIoError> {
    let mut findings = Vec::new();
    for path in workspace_sources(root)? {
        let source = std::fs::read_to_string(&path).map_err(|source| LintIoError {
            path: path.clone(),
            source,
        })?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&rel, &source));
    }
    Ok(findings)
}

/// Walk up from `start` to the directory holding the workspace-level
/// `Cargo.toml` (the one with a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_owned());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_owned);
    }
    None
}

/// Render findings as a JSON array (machine-readable report). No
/// serde in this workspace, so escaping is done by hand.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"rule\":\"{}\",", json_escape(&f.rule)));
        out.push_str(&format!("\"path\":\"{}\",", json_escape(&f.path)));
        out.push_str(&format!("\"line\":{},", f.line));
        out.push_str(&format!("\"message\":\"{}\",", json_escape(&f.message)));
        match &f.allowed {
            Some(reason) => {
                out.push_str(&format!("\"allowed\":\"{}\"", json_escape(reason)));
            }
            None => out.push_str("\"allowed\":null"),
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
