//! The determinism / robustness rule set.
//!
//! Every rule is substring-level over *scrubbed* code (comments,
//! strings, and `#[cfg(test)]` modules already blanked — see
//! [`crate::scrub`]), scoped by crate and file role. Rules are listed
//! in [`RULES`]; `imprecise-lint --list-rules` prints this table.

use crate::scrub::Scrubbed;
use crate::{FileRole, Finding};

/// Static description of one rule, for docs and `--list-rules`.
pub struct RuleDoc {
    pub id: &'static str,
    pub summary: &'static str,
    pub scope: &'static str,
    pub rationale: &'static str,
}

/// Crates whose `src/` (excluding `src/bin/`) forms the deterministic
/// pipeline: published bytes must be identical across runs, thread
/// counts, and schedules.
pub const DETERMINISTIC_CRATES: &[&str] = &["pxml", "integrate", "query", "store", "core"];

/// Crates held to the no-panic robustness bar. `bench` and `datagen`
/// are measurement/data harnesses and exempt; binaries are exempt.
pub const ROBUST_CRATES: &[&str] = &[
    "xmlkit",
    "sim",
    "pxml",
    "oracle",
    "query",
    "quality",
    "integrate",
    "store",
    "feedback",
    "core",
    "verify",
];

pub const RULES: &[RuleDoc] = &[
    RuleDoc {
        id: "hash-iteration",
        summary: "iterating a HashMap/HashSet declared in this file",
        scope: "deterministic crates (pxml, integrate, query, store, core), lib code",
        rationale: "Hash iteration order depends on the hasher state and can differ across \
                    runs; anything feeding canonical output must use BTreeMap/BTreeSet or \
                    sort explicitly before emission.",
    },
    RuleDoc {
        id: "instant-now",
        summary: "Instant::now() in deterministic code",
        scope: "deterministic crates, lib code",
        rationale: "Wall-clock reads let timing influence control flow (e.g. time-based \
                    budgets), breaking serial == parallel bitwise equality.",
    },
    RuleDoc {
        id: "system-time",
        summary: "SystemTime::now() in deterministic code",
        scope: "deterministic crates, lib code",
        rationale: "Same hazard as instant-now, plus host-clock dependence in outputs.",
    },
    RuleDoc {
        id: "env-read",
        summary: "environment variable read in deterministic code",
        scope: "deterministic crates, lib code",
        rationale: "env::var makes published bytes depend on ambient process state; \
                    configuration must flow through typed options structs.",
    },
    RuleDoc {
        id: "thread-id",
        summary: "thread::current() (thread identity) in deterministic code",
        scope: "deterministic crates, lib code",
        rationale: "Thread ids and names vary run to run; using them for ordering or \
                    keying breaks schedule independence.",
    },
    RuleDoc {
        id: "nondet-rng",
        summary: "OS-seeded randomness in deterministic code",
        scope: "deterministic crates, lib code",
        rationale: "thread_rng/from_entropy/rand::random/RandomState draw from the OS; \
                    only fixed-seed generators are allowed in the pipeline.",
    },
    RuleDoc {
        id: "unwrap-in-lib",
        summary: ".unwrap() in non-test library code",
        scope: "library crates (all but bench/datagen), lib code",
        rationale: "Panics abort whole integrations; recoverable paths must surface typed \
                    errors (ImpreciseError / IntegrateError). Proven-impossible cases need \
                    a lint:allow stating the invariant.",
    },
    RuleDoc {
        id: "expect-in-lib",
        summary: ".expect(..) in non-test library code",
        scope: "library crates (all but bench/datagen), lib code",
        rationale: "Same bar as unwrap-in-lib; an expect message is not an error path.",
    },
    RuleDoc {
        id: "panic-in-lib",
        summary: "panic!/unreachable!/todo!/unimplemented! in non-test library code",
        scope: "library crates (all but bench/datagen), lib code",
        rationale: "Explicit panics in reachable code must become typed errors; genuinely \
                    unreachable arms need a lint:allow naming the exhaustiveness argument.",
    },
    RuleDoc {
        id: "float-accumulation",
        summary: "float sum/fold outside the canonical-order helpers",
        scope: "crates/integrate/src/matching.rs and merge.rs only",
        rationale: "f64 addition is not associative: summing weights in a data-dependent \
                    order can flip low bits and thus fingerprints. Accumulations in the \
                    matcher/merger must run over canonically ordered sequences and say so.",
    },
    RuleDoc {
        id: "partial-cmp-sort",
        summary: "partial_cmp inside a sort/max/min comparator",
        scope: "deterministic crates, lib code",
        rationale: "partial_cmp(..).unwrap()/expect() panics on NaN and invites unwrap \
                    noise; comparators over f64 must use total_cmp.",
    },
    RuleDoc {
        id: "scope-shared-mutation",
        summary: "locks/interior mutability inside thread::scope",
        scope: "deterministic crates, lib code",
        rationale: "Parallel stages must follow the deterministic-reassembly pattern \
                    (atomic work counter + channel + reassembly in index order). Locks, \
                    RefCell, or unsafe inside thread::scope let worker timing leak into \
                    results.",
    },
    RuleDoc {
        id: "print-in-lib",
        summary: "println!/eprintln!/dbg! in deterministic library code",
        scope: "deterministic crates, lib code",
        rationale: "Library code must not write to stdio: interleaved worker output is \
                    nondeterministic and corrupts machine-read pipelines.",
    },
    RuleDoc {
        id: "sim-unsafe",
        summary: "unsafe code in the similarity kernels",
        scope: "crates/sim, lib code",
        rationale: "SIMD kernels are the only sanctioned unsafe in the workspace; every \
                    unsafe block must carry a lint:allow naming the safety proof (the \
                    target-feature gate) so new unsafe cannot land unreviewed.",
    },
    RuleDoc {
        id: "sim-isa-dispatch",
        summary: "runtime ISA detection / kernel-selection env read in sim",
        scope: "crates/sim, lib code",
        rationale: "Kernel dispatch decides which machine code computes similarities; \
                    every detection site must be annotated with why its choice cannot \
                    change results (all kernels are bit-identical) and must stay cached \
                    so published bytes never depend on mid-run environment changes.",
    },
    RuleDoc {
        id: "unused-allow",
        summary: "lint:allow directive that suppresses nothing",
        scope: "everywhere the lint runs",
        rationale: "Stale allows hide future regressions: if the hazard is gone the \
                    escape hatch must go with it. (Also fires on allows naming unknown \
                    rules and on allows missing a reason.)",
    },
];

pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|r| r.id).collect()
}

struct Ctx<'a> {
    role: &'a FileRole,
    scrubbed: &'a Scrubbed,
    findings: Vec<Finding>,
}

impl Ctx<'_> {
    fn push(&mut self, rule: &'static str, line: usize, message: String) {
        self.findings.push(Finding {
            rule: rule.to_owned(),
            path: self.role.rel_path.clone(),
            line,
            message,
            allowed: None,
        });
    }
}

/// Run every applicable rule over one scrubbed file, then resolve
/// `lint:allow` directives (marking findings allowed, flagging unused
/// or malformed directives).
pub fn check_file(role: &FileRole, scrubbed: &Scrubbed) -> Vec<Finding> {
    let mut ctx = Ctx {
        role,
        scrubbed,
        findings: Vec::new(),
    };

    let deterministic = !role.is_bin && DETERMINISTIC_CRATES.contains(&role.crate_name.as_str());
    let robust = !role.is_bin && ROBUST_CRATES.contains(&role.crate_name.as_str());

    if deterministic {
        hash_iteration(&mut ctx);
        simple_needles(
            &mut ctx,
            &[
                ("instant-now", &["Instant::now"][..], "wall-clock read"),
                ("system-time", &["SystemTime::now"], "system clock read"),
                ("env-read", &["env::var", "env::vars"], "environment read"),
                ("thread-id", &["thread::current"], "thread-identity read"),
                (
                    "nondet-rng",
                    &["thread_rng", "from_entropy", "rand::random", "RandomState"],
                    "OS-seeded randomness",
                ),
                (
                    "print-in-lib",
                    &["println!(", "eprintln!(", "print!(", "eprint!(", "dbg!("],
                    "stdio write in library code",
                ),
            ],
        );
        partial_cmp_sort(&mut ctx);
        scope_shared_mutation(&mut ctx);
    }
    if robust {
        simple_needles(
            &mut ctx,
            &[
                (
                    "unwrap-in-lib",
                    &[".unwrap()"][..],
                    "unwrap in library code",
                ),
                // The string-literal argument distinguishes
                // Option/Result::expect from same-named combinators
                // (xmlkit's `Parser::expect(b'>')` returns a Result).
                ("expect-in-lib", &[".expect(\""], "expect in library code"),
                (
                    "panic-in-lib",
                    &["panic!(", "unreachable!(", "todo!(", "unimplemented!("],
                    "explicit panic in library code",
                ),
            ],
        );
    }
    if role.rel_path.ends_with("integrate/src/matching.rs")
        || role.rel_path.ends_with("integrate/src/merge.rs")
    {
        float_accumulation(&mut ctx);
    }
    if !role.is_bin && role.crate_name == "sim" {
        simple_needles(
            &mut ctx,
            &[
                (
                    "sim-unsafe",
                    &["unsafe "][..],
                    "unsafe in similarity kernel code",
                ),
                (
                    "sim-isa-dispatch",
                    &["is_x86_feature_detected", "env::var", "env::vars"],
                    "runtime ISA/kernel dispatch",
                ),
            ],
        );
    }

    let mut findings = ctx.findings;
    apply_allows(role, scrubbed, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    findings
}

/// Substring rules: each `(rule, needles, label)` fires once per line
/// containing any needle.
fn simple_needles(ctx: &mut Ctx<'_>, table: &[(&'static str, &[&str], &str)]) {
    for (idx, line) in ctx.scrubbed.lines.iter().enumerate() {
        for (rule, needles, label) in table {
            for needle in *needles {
                if let Some(col) = line.find(needle) {
                    // `panic!` must not fire on `debug_assert!`-expanded
                    // text or on macro *definitions*; substring scope is
                    // enough for this codebase.
                    ctx.push(rule, idx + 1, format!("{label}: `{}`", snippet(line, col)));
                    break;
                }
            }
        }
    }
}

/// Identifiers declared as HashMap/HashSet in this file, then iterated.
fn hash_iteration(ctx: &mut Ctx<'_>) {
    let mut names: Vec<String> = Vec::new();
    for line in &ctx.scrubbed.lines {
        for ty in ["HashMap", "HashSet"] {
            let mut rest = line.as_str();
            while let Some(pos) = rest.find(ty) {
                let before = &rest[..pos];
                if let Some(name) = declared_name(before) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
                rest = &rest[pos + ty.len()..];
            }
        }
    }
    const ITER_METHODS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_keys()",
        ".into_values()",
        ".drain(",
        ".retain(",
    ];
    for (idx, line) in ctx.scrubbed.lines.iter().enumerate() {
        for name in &names {
            for m in ITER_METHODS {
                let needle = format!("{name}{m}");
                if find_word_start(line, &needle).is_some() {
                    ctx.push(
                        "hash-iteration",
                        idx + 1,
                        format!("iteration over hash-ordered `{name}` via `{m}`"),
                    );
                }
            }
            // `for x in name` / `for x in &name` / `for x in &mut name`
            if line.contains("for ") {
                for pat in [
                    format!(" in {name}"),
                    format!(" in &{name}"),
                    format!(" in &mut {name}"),
                ] {
                    if let Some(pos) = line.find(&pat) {
                        let end = pos + pat.len();
                        let boundary = line[end..]
                            .chars()
                            .next()
                            .map(|c| !c.is_alphanumeric() && c != '_')
                            .unwrap_or(true);
                        if boundary {
                            ctx.push(
                                "hash-iteration",
                                idx + 1,
                                format!("for-loop over hash-ordered `{name}`"),
                            );
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Given the text before a `HashMap`/`HashSet` occurrence, pull out the
/// identifier being declared with it: `let [mut] NAME =`, `NAME:`
/// (binding, field, or parameter), or `NAME = `.
fn declared_name(before: &str) -> Option<String> {
    let trimmed = before.trim_end();
    let trimmed = trimmed
        .strip_suffix('=')
        .or_else(|| trimmed.strip_suffix(':'))?
        .trim_end();
    // Drop generic/reference sugar between the name and the type.
    let trimmed = trimmed.trim_end_matches(['&', '<', ' ']);
    let name: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    // Skip type positions like `pub fn f() -> HashMap<..>`.
    if name == "mut" || name == "dyn" || name == "impl" {
        return None;
    }
    Some(name)
}

/// `partial_cmp` used to order things: flag when a sort/max/min
/// combinator appears on the same or the three preceding lines.
fn partial_cmp_sort(ctx: &mut Ctx<'_>) {
    const ORDER_WORDS: &[&str] = &[
        "sort_by",
        "sort_unstable_by",
        "max_by",
        "min_by",
        "binary_search_by",
    ];
    for (idx, line) in ctx.scrubbed.lines.iter().enumerate() {
        let Some(col) = line.find(".partial_cmp(") else {
            continue;
        };
        let lo = idx.saturating_sub(3);
        let near_sort = ctx.scrubbed.lines[lo..=idx]
            .iter()
            .any(|l| ORDER_WORDS.iter().any(|w| l.contains(w)));
        if near_sort {
            ctx.push(
                "partial-cmp-sort",
                idx + 1,
                format!(
                    "comparator uses partial_cmp (use total_cmp): `{}`",
                    snippet(line, col)
                ),
            );
        }
    }
}

/// Inside `thread::scope(..)` regions, flag shared-state mutation
/// primitives that bypass the deterministic-reassembly pattern.
fn scope_shared_mutation(ctx: &mut Ctx<'_>) {
    const HAZARDS: &[&str] = &[
        ".lock()",
        ".write()",
        ".read()",
        "RefCell",
        "UnsafeCell",
        "unsafe ",
        "static mut",
    ];
    let lines = &ctx.scrubbed.lines;
    let mut idx = 0usize;
    while idx < lines.len() {
        let Some(col) = lines[idx].find("thread::scope(") else {
            idx += 1;
            continue;
        };
        // Parenthesis-match from the `(` to find the region's extent.
        let mut depth = 0usize;
        let mut li = idx;
        let mut ci = col + "thread::scope".len();
        let end_line;
        'scan: loop {
            let chars: Vec<char> = lines[li].chars().collect();
            while ci < chars.len() {
                match chars[ci] {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = li;
                            break 'scan;
                        }
                    }
                    _ => {}
                }
                ci += 1;
            }
            li += 1;
            ci = 0;
            if li >= lines.len() {
                end_line = lines.len() - 1;
                break;
            }
        }
        for (off, line) in lines[idx..=end_line].iter().enumerate() {
            for h in HAZARDS {
                if let Some(c) = line.find(h) {
                    ctx.push(
                        "scope-shared-mutation",
                        idx + off + 1,
                        format!(
                            "`{}` inside thread::scope — use the work-counter + channel \
                             reassembly pattern",
                            snippet(line, c)
                        ),
                    );
                }
            }
        }
        idx = end_line + 1;
    }
}

/// Float accumulation in the matcher/merger: every f64 sum/fold must be
/// over a canonically ordered sequence and annotated to say which one.
fn float_accumulation(ctx: &mut Ctx<'_>) {
    for (idx, line) in ctx.scrubbed.lines.iter().enumerate() {
        let hit = line.contains(".sum::<f64>()")
            || (line.contains(".sum()") && line.contains("f64"))
            || line.contains("fold(0.0")
            || line.contains("fold(0f64")
            || line.contains("fold(0_f64");
        if hit {
            let col = line
                .find(".sum")
                .or_else(|| line.find("fold(0"))
                .unwrap_or(0);
            ctx.push(
                "float-accumulation",
                idx + 1,
                format!(
                    "float accumulation; justify the canonical order: `{}`",
                    snippet(line, col)
                ),
            );
        }
    }
}

/// Match allow directives to findings. Unused / malformed directives
/// become `unused-allow` findings themselves.
fn apply_allows(role: &FileRole, scrubbed: &Scrubbed, findings: &mut Vec<Finding>) {
    let known = rule_ids();
    let mut used = vec![false; scrubbed.allows.len()];
    for f in findings.iter_mut() {
        for (ai, a) in scrubbed.allows.iter().enumerate() {
            if a.target_line == f.line && a.rule == f.rule && !a.reason.is_empty() {
                f.allowed = Some(a.reason.clone());
                used[ai] = true;
            }
        }
    }
    for (ai, a) in scrubbed.allows.iter().enumerate() {
        let problem = if !known.contains(&a.rule.as_str()) {
            Some(format!("allow names unknown rule `{}`", a.rule))
        } else if a.reason.is_empty() {
            Some(format!("allow for `{}` is missing a reason", a.rule))
        } else if !used[ai] {
            Some(format!(
                "allow for `{}` matches no finding on line {}",
                a.rule, a.target_line
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            findings.push(Finding {
                rule: "unused-allow".to_owned(),
                path: role.rel_path.clone(),
                line: a.comment_line,
                message,
                allowed: None,
            });
        }
    }
}

fn find_word_start(line: &str, needle: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(pos) = line[from..].find(needle) {
        let abs = from + pos;
        let ok = abs == 0
            || line[..abs]
                .chars()
                .next_back()
                .map(|c| !c.is_alphanumeric() && c != '_' && c != '.')
                .unwrap_or(true);
        if ok {
            return Some(abs);
        }
        from = abs + needle.len();
    }
    None
}

fn snippet(line: &str, col: usize) -> String {
    let s = line[col.min(line.len())..].trim();
    let cut: String = s.chars().take(48).collect();
    if cut.len() < s.len() {
        format!("{cut}…")
    } else {
        cut
    }
}
