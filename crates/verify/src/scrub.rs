//! A small hand-rolled Rust source scanner.
//!
//! The lint rules in this crate operate on *code text only*: comments,
//! string/char literals, and `#[cfg(test)]` modules are blanked out
//! (replaced by spaces, newlines preserved) so that substring-level
//! rules cannot fire on prose, doc examples, or test assertions.
//! Comments are captured separately so `// lint:allow(rule, reason)`
//! escape hatches can be parsed out of them.
//!
//! This is deliberately not a full Rust lexer: it understands exactly
//! the token classes that matter for blanking — line comments, nested
//! block comments, string literals (incl. raw strings with `#` fences
//! and byte strings), char literals vs. lifetimes — and nothing more.

/// One `// lint:allow(rule, reason)` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive *applies to*: the same line when the
    /// comment trails code, otherwise the next line that carries code.
    pub target_line: usize,
    /// 1-based line the comment itself sits on (for diagnostics).
    pub comment_line: usize,
    pub rule: String,
    pub reason: String,
}

/// The result of scrubbing one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// Code-only text, split into lines. Indexing is 0-based; rule
    /// findings report `index + 1`.
    pub lines: Vec<String>,
    pub allows: Vec<AllowDirective>,
}

/// A comment captured during scanning, before allow-directive parsing.
struct RawComment {
    line: usize, // 1-based line where the comment starts
    text: String,
    /// True when some code appears before the comment on its first line.
    trails_code: bool,
    /// Doc comments (`///`, `//!`, `/**`, `/*!`) never carry allow
    /// directives — they describe the syntax, they don't invoke it.
    is_doc: bool,
}

pub fn scrub(source: &str) -> Scrubbed {
    let bytes: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comments: Vec<RawComment> = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match c {
            '\n' => {
                code.push('\n');
                line += 1;
                line_has_code = false;
                i += 1;
            }
            '/' if next == Some('/') => {
                let start_line = line;
                let trails = line_has_code;
                let mut text = String::new();
                while i < bytes.len() && bytes[i] != '\n' {
                    text.push(bytes[i]);
                    code.push(' ');
                    i += 1;
                }
                let is_doc = text.starts_with("///") || text.starts_with("//!");
                comments.push(RawComment {
                    line: start_line,
                    text,
                    trails_code: trails,
                    is_doc,
                });
            }
            '/' if next == Some('*') => {
                let start_line = line;
                let trails = line_has_code;
                let mut text = String::new();
                let mut depth = 0usize;
                while i < bytes.len() {
                    let c = bytes[i];
                    let n = bytes.get(i + 1).copied();
                    if c == '/' && n == Some('*') {
                        depth += 1;
                        text.push_str("/*");
                        code.push_str("  ");
                        i += 2;
                    } else if c == '*' && n == Some('/') {
                        depth -= 1;
                        text.push_str("*/");
                        code.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if c == '\n' {
                            code.push('\n');
                            line += 1;
                        } else {
                            code.push(' ');
                        }
                        text.push(c);
                        i += 1;
                    }
                }
                line_has_code = false;
                let is_doc = text.starts_with("/**") || text.starts_with("/*!");
                comments.push(RawComment {
                    line: start_line,
                    text,
                    trails_code: trails,
                    is_doc,
                });
            }
            '"' => {
                // Plain string literal (the `b` / `r` prefixes route here
                // too once the prefix chars have been emitted as code).
                code.push('"');
                line_has_code = true;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c == '\\' {
                        code.push_str("  ");
                        // A trailing `\<newline>` continuation keeps the
                        // line structure; treat uniformly.
                        if bytes.get(i + 1) == Some(&'\n') {
                            code.pop();
                            code.pop();
                            code.push(' ');
                            code.push('\n');
                            line += 1;
                        }
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        i += 1;
                        break;
                    } else if c == '\n' {
                        code.push('\n');
                        line += 1;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
            'r' if is_raw_string_start(&bytes, i) && !prev_is_ident(&bytes, i) => {
                i += 1; // past `r`
                code.push('r');
                let mut hashes = 0usize;
                while bytes.get(i) == Some(&'#') {
                    hashes += 1;
                    code.push('#');
                    i += 1;
                }
                code.push('"');
                i += 1; // past opening quote
                        // Scan until `"` followed by `hashes` hash marks.
                while i < bytes.len() {
                    if bytes[i] == '"' && count_hashes(&bytes, i + 1) >= hashes {
                        code.push('"');
                        i += 1;
                        for _ in 0..hashes {
                            code.push('#');
                            i += 1;
                        }
                        break;
                    }
                    if bytes[i] == '\n' {
                        code.push('\n');
                        line += 1;
                    } else {
                        code.push(' ');
                    }
                    i += 1;
                }
                line_has_code = true;
            }
            '\'' => {
                // Char literal or lifetime. `'\...'` and `'x'` are char
                // literals; anything else (e.g. `'static`) is a lifetime
                // and passes through as code.
                if next == Some('\\') {
                    code.push('\'');
                    i += 1;
                    while i < bytes.len() && bytes[i] != '\'' {
                        code.push(' ');
                        if bytes[i] == '\\' && i + 1 < bytes.len() {
                            code.push(' ');
                            i += 1;
                        }
                        i += 1;
                    }
                    code.push('\'');
                    i += 1;
                } else if bytes.get(i + 2) == Some(&'\'') && next != Some('\'') {
                    code.push('\'');
                    code.push(' ');
                    code.push('\'');
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
                line_has_code = true;
            }
            _ => {
                if !c.is_whitespace() {
                    line_has_code = true;
                }
                code.push(c);
                i += 1;
            }
        }
    }

    let mut lines: Vec<String> = code.split('\n').map(str::to_owned).collect();
    // `split` yields a trailing empty slot for newline-terminated files;
    // keep it — line counts then match editors.
    blank_test_modules(&mut lines);
    let allows = resolve_allows(&lines, &comments);
    Scrubbed { lines, allows }
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // `r"`, `r#...#"` — caller guarantees bytes[i] == 'r'.
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

fn count_hashes(bytes: &[char], mut i: usize) -> usize {
    let mut n = 0;
    while bytes.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

/// Blank every `#[cfg(test)]`-gated item (in practice: the trailing
/// `mod tests { ... }` blocks) so rules never fire on test code.
fn blank_test_modules(lines: &mut [String]) {
    let mut idx = 0usize;
    while idx < lines.len() {
        let Some(col) = lines[idx].find("#[cfg(test)]") else {
            idx += 1;
            continue;
        };
        // Locate the end of the gated item: brace-match from the first
        // `{` that appears at or after the attribute; fall back to the
        // first `;` for brace-less items like `#[cfg(test)] use ...;`.
        let mut depth = 0usize;
        let mut seen_brace = false;
        let mut li = idx;
        let mut ci = col + "#[cfg(test)]".len();
        'scan: while li < lines.len() {
            let chars: Vec<char> = lines[li].chars().collect();
            while ci < chars.len() {
                match chars[ci] {
                    '{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if seen_brace && depth == 0 {
                            break 'scan;
                        }
                    }
                    ';' if !seen_brace => break 'scan,
                    _ => {}
                }
                ci += 1;
            }
            li += 1;
            ci = 0;
        }
        let end = li.min(lines.len() - 1);
        for blank_line in lines.iter_mut().take(end + 1).skip(idx) {
            *blank_line = String::new();
        }
        idx = end + 1;
    }
}

fn resolve_allows(lines: &[String], comments: &[RawComment]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        if c.is_doc {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let inner = &rest[..close];
            rest = &rest[close + 1..];
            let (rule, reason) = match inner.split_once(',') {
                Some((r, why)) => (r.trim().to_owned(), why.trim().to_owned()),
                None => (inner.trim().to_owned(), String::new()),
            };
            let target_line = if c.trails_code {
                c.line
            } else {
                // Standalone comment: applies to the next line with code.
                let mut t = c.line; // c.line is 1-based; lines[c.line] is the next line
                while t < lines.len() && lines[t].trim().is_empty() {
                    t += 1;
                }
                t + 1
            };
            out.push(AllowDirective {
                target_line,
                comment_line: c.line,
                rule,
                reason,
            });
        }
    }
    out
}
