//! Self-test corpus: every lint rule is proven by a deliberately-bad
//! fixture that must trigger it, and the good fixtures must stay
//! quiet. Fixture files carry a `// lint-fixture-path:` header naming
//! the workspace path they should be linted *as if* they lived at
//! (several rules are crate- or file-scoped).

use std::path::{Path, PathBuf};

use imprecise_verify::{lint_source, rules, Finding};

fn fixtures_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

fn lint_fixture(path: &Path) -> Vec<Finding> {
    let source =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let pretend = source
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("// lint-fixture-path:"))
        .map(str::trim)
        .unwrap_or("crates/pxml/src/fixture.rs")
        .to_owned();
    lint_source(&pretend, &source)
}

fn fixture_files(kind: &str) -> Vec<PathBuf> {
    let dir = fixtures_dir(kind);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    files
}

/// `fixtures/bad/<rule_with_underscores>.rs` must produce at least one
/// unallowed finding for exactly that rule.
#[test]
fn every_bad_fixture_triggers_its_rule() {
    for path in fixture_files("bad") {
        let stem = path
            .file_stem()
            .expect("stem")
            .to_string_lossy()
            .to_string();
        let expected_rule = stem.replace('_', "-");
        let findings = lint_fixture(&path);
        let hits: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == expected_rule && f.allowed.is_none())
            .collect();
        assert!(
            !hits.is_empty(),
            "fixture {} should trigger `{expected_rule}`; findings were: {:#?}",
            path.display(),
            findings
        );
    }
}

/// Every documented rule has a bad fixture, and every bad fixture names
/// a documented rule — the corpus and the rule table cannot drift.
#[test]
fn rule_table_and_fixture_corpus_agree() {
    let ids = rules::rule_ids();
    let fixture_rules: Vec<String> = fixture_files("bad")
        .iter()
        .map(|p| {
            p.file_stem()
                .expect("stem")
                .to_string_lossy()
                .replace('_', "-")
        })
        .collect();
    for id in &ids {
        assert!(
            fixture_rules.iter().any(|r| r == id),
            "rule `{id}` has no bad fixture under fixtures/bad/"
        );
    }
    for r in &fixture_rules {
        assert!(
            ids.contains(&r.as_str()),
            "fixture for `{r}` names a rule that is not in rules::RULES"
        );
    }
    assert!(
        ids.len() >= 10,
        "the lint must ship at least 10 rules, found {}",
        ids.len()
    );
}

/// Good fixtures produce zero *unallowed* findings; the fully-clean
/// ones produce zero findings at all.
#[test]
fn good_fixtures_stay_quiet() {
    for path in fixture_files("good") {
        let findings = lint_fixture(&path);
        let unallowed: Vec<&Finding> = findings.iter().filter(|f| f.allowed.is_none()).collect();
        assert!(
            unallowed.is_empty(),
            "good fixture {} has unallowed findings: {:#?}",
            path.display(),
            unallowed
        );
        let stem = path
            .file_stem()
            .expect("stem")
            .to_string_lossy()
            .to_string();
        if stem != "allowed" {
            assert!(
                findings.is_empty(),
                "good fixture {} should be finding-free, got: {:#?}",
                path.display(),
                findings
            );
        }
    }
}

/// The allowed.rs fixture exercises both attachment forms (standalone
/// comment -> next line, trailing comment -> same line) and must show
/// its findings as suppressed-with-reason.
#[test]
fn allows_attach_to_the_right_lines() {
    let path = fixtures_dir("good").join("allowed.rs");
    let findings = lint_fixture(&path);
    assert!(
        findings.len() >= 2,
        "expected suppressed findings, got {findings:#?}"
    );
    for f in &findings {
        let reason = f.allowed.as_deref().unwrap_or("");
        assert!(!reason.is_empty(), "finding lost its allow reason: {f}");
    }
}

/// The machine-readable report escapes content and round-trips the
/// allowed/unallowed distinction.
#[test]
fn json_report_shape() {
    let findings = lint_fixture(&fixtures_dir("bad").join("unwrap_in_lib.rs"));
    let json = imprecise_verify::to_json(&findings);
    assert!(json.starts_with('['));
    assert!(json.contains("\"rule\":\"unwrap-in-lib\""));
    assert!(json.contains("\"allowed\":null"));
    assert!(json.trim_end().ends_with(']'));
}
