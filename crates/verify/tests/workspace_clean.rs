//! The lint must pass on the workspace itself: zero unallowed
//! findings anywhere, and — per the PR-7 hot-path audit — zero
//! `lint:allow` escapes of any kind in `integrate/src/pipeline.rs`
//! and `core/src/engine.rs`.

use std::path::{Path, PathBuf};

use imprecise_verify::{lint_workspace, Finding};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify sits two levels under the workspace root")
        .to_owned()
}

#[test]
fn workspace_has_no_unallowed_findings() {
    let findings = lint_workspace(&workspace_root()).expect("walk workspace sources");
    let unallowed: Vec<&Finding> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    assert!(
        unallowed.is_empty(),
        "imprecise-lint found unallowed hazards:\n{}",
        unallowed
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn hot_path_files_have_empty_allowlists() {
    for rel in [
        "crates/integrate/src/pipeline.rs",
        "crates/core/src/engine.rs",
    ] {
        let path = workspace_root().join(rel);
        let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        assert!(
            !source.contains("lint:allow"),
            "{rel} must not carry lint:allow escapes — fix the hazard with a typed error instead"
        );
    }
}
