//! Arena-based XML document model.
//!
//! Every node lives in a flat `Vec` owned by [`XmlDoc`]; [`NodeId`] is a
//! 32-bit index. This is the classic pattern for tree-heavy database code:
//! no `Rc` cycles, cheap copies of handles, good locality, and subtree
//! operations are simple index walks. The probabilistic layers of the
//! reproduction (`imprecise-pxml`) use the same pattern.

use crate::error::{XmlError, XmlResult};

/// Handle to a node inside a specific [`XmlDoc`].
///
/// A `NodeId` is only meaningful together with the document that produced
/// it; mixing ids across documents is a logic error (checked in debug
/// builds where cheap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw arena index, useful for dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single attribute (`name="value"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attr {
    /// Attribute name.
    pub name: String,
    /// Attribute value (unescaped).
    pub value: String,
}

/// The payload of a node: an element with a tag and attributes, or a text
/// node carrying character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node like `<movie year="1995">…</movie>`.
    Element {
        /// Tag name.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<Attr>,
    },
    /// A text node. Adjacent text nodes are merged by the parser.
    Text(String),
}

#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An XML document: an arena of nodes plus a distinguished root element.
#[derive(Debug, Clone)]
pub struct XmlDoc {
    nodes: Vec<NodeData>,
    root: NodeId,
}

impl XmlDoc {
    /// Create a document whose root element has tag `root_tag`.
    pub fn new(root_tag: impl Into<String>) -> Self {
        let root_data = NodeData {
            kind: NodeKind::Element {
                tag: root_tag.into(),
                attrs: Vec::new(),
            },
            parent: None,
            children: Vec::new(),
        };
        XmlDoc {
            nodes: vec![root_data],
            root: NodeId(0),
        }
    }

    /// The root element of the document.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + text) in the arena, including any
    /// detached nodes. For documents built only through the public API this
    /// equals the number of reachable nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the arena holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    #[inline]
    fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    /// The node payload.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.node(id).kind
    }

    /// The element tag, or `None` for text nodes.
    #[inline]
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { tag, .. } => Some(tag),
            NodeKind::Text(_) => None,
        }
    }

    /// The text payload, or `None` for element nodes.
    #[inline]
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element { .. } => None,
        }
    }

    /// True if `id` is an element node.
    #[inline]
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Element { .. })
    }

    /// True if `id` is a text node.
    #[inline]
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Text(_))
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of a node in document order (empty for text nodes).
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Iterator over the element children of a node.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| self.is_element(c))
    }

    /// Element children with the given tag, in document order.
    pub fn children_with_tag<'a>(
        &'a self,
        id: NodeId,
        tag: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.child_elements(id)
            .filter(move |&c| self.tag(c) == Some(tag))
    }

    /// First element child with the given tag.
    pub fn first_child_with_tag(&self, id: NodeId, tag: &str) -> Option<NodeId> {
        self.children_with_tag(id, tag).next()
    }

    /// Attributes of an element (empty slice for text nodes).
    pub fn attrs(&self, id: NodeId) -> &[Attr] {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => attrs,
            NodeKind::Text(_) => &[],
        }
    }

    /// Value of the attribute `name` on element `id`, if present.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attrs(id)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Set (or replace) an attribute on an element.
    ///
    /// # Panics
    /// Panics if `id` is a text node.
    pub fn set_attr(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        match &mut self.node_mut(id).kind {
            NodeKind::Element { attrs, .. } => {
                if let Some(a) = attrs.iter_mut().find(|a| a.name == name) {
                    a.value = value;
                } else {
                    attrs.push(Attr { name, value });
                }
            }
            // lint:allow(panic-in-lib, documented API contract: panics with set_attr on a text node)
            NodeKind::Text(_) => panic!("set_attr on a text node"),
        }
    }

    /// Append a new element child with tag `tag` under `parent` and return
    /// its id.
    pub fn add_element(&mut self, parent: NodeId, tag: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            kind: NodeKind::Element {
                tag: tag.into(),
                attrs: Vec::new(),
            },
            parent: Some(parent),
            children: Vec::new(),
        });
        self.node_mut(parent).children.push(id);
        id
    }

    /// Append a text child under `parent` and return its id.
    ///
    /// If the previous child of `parent` is already a text node the new text
    /// is merged into it (mirroring parser behaviour) and the existing id is
    /// returned.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let text = text.into();
        if let Some(&last) = self.node(parent).children.last() {
            if self.is_text(last) {
                if let NodeKind::Text(t) = &mut self.node_mut(last).kind {
                    t.push_str(&text);
                }
                return last;
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            kind: NodeKind::Text(text),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.node_mut(parent).children.push(id);
        id
    }

    /// Convenience: add `<tag>text</tag>` under `parent`, returning the new
    /// element's id. This is the dominant shape in the paper's documents
    /// (`<nm>John</nm>`, `<tel>1111</tel>`, `<title>Jaws</title>`…).
    pub fn add_text_element(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        text: impl Into<String>,
    ) -> NodeId {
        let el = self.add_element(parent, tag);
        self.add_text(el, text);
        el
    }

    /// Concatenated text of all descendant text nodes of `id` (the XPath
    /// `string()` value of an element).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Element { .. } => {
                for &c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Pre-order traversal of the subtree rooted at `id` (inclusive).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// Number of nodes in the subtree rooted at `id` (inclusive).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants(id).count()
    }

    /// Deep-copy the subtree rooted at `src_node` of `src_doc` as a new
    /// child of `parent` in `self`. Returns the id of the copy's root.
    pub fn graft(&mut self, parent: NodeId, src_doc: &XmlDoc, src_node: NodeId) -> NodeId {
        match src_doc.kind(src_node).clone() {
            NodeKind::Element { tag, attrs } => {
                let el = self.add_element(parent, tag);
                for a in attrs {
                    self.set_attr(el, a.name, a.value);
                }
                for &c in src_doc.children(src_node) {
                    self.graft(el, src_doc, c);
                }
                el
            }
            NodeKind::Text(t) => self.add_text(parent, t),
        }
    }

    /// Extract the subtree rooted at `id` into a standalone document whose
    /// root is a copy of `id` (which must be an element).
    pub fn subtree_to_doc(&self, id: NodeId) -> XmlResult<XmlDoc> {
        let tag = self.tag(id).ok_or_else(|| XmlError::BadDocumentStructure {
            message: "cannot make a document from a text node".into(),
        })?;
        let mut out = XmlDoc::new(tag);
        for a in self.attrs(id) {
            out.set_attr(out.root(), a.name.clone(), a.value.clone());
        }
        for &c in self.children(id) {
            out.graft(out.root(), self, c);
        }
        Ok(out)
    }
}

/// Pre-order iterator returned by [`XmlDoc::descendants`].
pub struct Descendants<'a> {
    doc: &'a XmlDoc,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children in reverse so the left-most child is visited first.
        for &c in self.doc.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (XmlDoc, NodeId, NodeId) {
        let mut d = XmlDoc::new("addressbook");
        let p = d.add_element(d.root(), "person");
        let nm = d.add_text_element(p, "nm", "John");
        d.add_text_element(p, "tel", "1111");
        (d, p, nm)
    }

    #[test]
    fn build_and_navigate() {
        let (d, p, nm) = sample();
        assert_eq!(d.tag(d.root()), Some("addressbook"));
        assert_eq!(d.parent(p), Some(d.root()));
        assert_eq!(d.parent(nm), Some(p));
        assert_eq!(d.children(p).len(), 2);
        assert_eq!(d.text_content(p), "John1111");
        assert_eq!(d.text_content(nm), "John");
    }

    #[test]
    fn children_with_tag_filters() {
        let (d, p, _) = sample();
        let tels: Vec<_> = d.children_with_tag(p, "tel").collect();
        assert_eq!(tels.len(), 1);
        assert_eq!(d.text_content(tels[0]), "1111");
        assert!(d.first_child_with_tag(p, "email").is_none());
    }

    #[test]
    fn attributes_roundtrip() {
        let mut d = XmlDoc::new("movie");
        d.set_attr(d.root(), "year", "1995");
        assert_eq!(d.attr(d.root(), "year"), Some("1995"));
        d.set_attr(d.root(), "year", "1996");
        assert_eq!(d.attr(d.root(), "year"), Some("1996"));
        assert_eq!(d.attrs(d.root()).len(), 1);
        assert_eq!(d.attr(d.root(), "missing"), None);
    }

    #[test]
    fn adjacent_text_merges() {
        let mut d = XmlDoc::new("t");
        let a = d.add_text(d.root(), "foo");
        let b = d.add_text(d.root(), "bar");
        assert_eq!(a, b);
        assert_eq!(d.text_content(d.root()), "foobar");
        assert_eq!(d.children(d.root()).len(), 1);
    }

    #[test]
    fn descendants_preorder() {
        let (d, p, nm) = sample();
        let order: Vec<_> = d.descendants(d.root()).collect();
        assert_eq!(order[0], d.root());
        assert_eq!(order[1], p);
        assert_eq!(order[2], nm);
        assert_eq!(d.subtree_size(d.root()), 6); // root, person, nm, "John", tel, "1111"
    }

    #[test]
    fn graft_copies_deeply() {
        let (src, p, _) = sample();
        let mut dst = XmlDoc::new("merged");
        let copy = dst.graft(dst.root(), &src, p);
        assert_eq!(dst.tag(copy), Some("person"));
        assert_eq!(dst.text_content(copy), "John1111");
        assert_eq!(dst.subtree_size(copy), 5);
    }

    #[test]
    fn subtree_to_doc_preserves_attrs() {
        let mut d = XmlDoc::new("catalog");
        let m = d.add_element(d.root(), "movie");
        d.set_attr(m, "id", "m1");
        d.add_text_element(m, "title", "Jaws");
        let sub = d.subtree_to_doc(m).unwrap();
        assert_eq!(sub.tag(sub.root()), Some("movie"));
        assert_eq!(sub.attr(sub.root(), "id"), Some("m1"));
        assert_eq!(sub.text_content(sub.root()), "Jaws");
    }

    #[test]
    fn subtree_to_doc_rejects_text_nodes() {
        let mut d = XmlDoc::new("t");
        let txt = d.add_text(d.root(), "x");
        assert!(d.subtree_to_doc(txt).is_err());
    }

    #[test]
    #[should_panic(expected = "set_attr on a text node")]
    fn set_attr_on_text_panics() {
        let mut d = XmlDoc::new("t");
        let txt = d.add_text(d.root(), "x");
        d.set_attr(txt, "a", "b");
    }
}
