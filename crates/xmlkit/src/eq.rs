//! Structural (deep) equality and fingerprinting of XML subtrees.
//!
//! The paper's first generic Oracle rule is *"two deep-equal elements refer
//! to the same real-world object"*; this module supplies the underlying
//! deep-equality predicate (modelled on XQuery's `fn:deep-equal`) plus a
//! 64-bit structural fingerprint so the integration engine can bucket
//! candidate elements instead of comparing all pairs quadratically.

use crate::doc::{NodeId, NodeKind, XmlDoc};

/// Deep equality of two whole documents (root against root).
pub fn deep_equal(a: &XmlDoc, b: &XmlDoc) -> bool {
    deep_equal_nodes(a, a.root(), b, b.root())
}

/// Deep equality of two subtrees, possibly from different documents.
///
/// Elements are equal when their tags match, their attribute *sets* match
/// (order-insensitive, per `fn:deep-equal`), and their child sequences are
/// pairwise deep-equal (order-sensitive). Text nodes compare by content.
pub fn deep_equal_nodes(a: &XmlDoc, an: NodeId, b: &XmlDoc, bn: NodeId) -> bool {
    match (a.kind(an), b.kind(bn)) {
        (NodeKind::Text(ta), NodeKind::Text(tb)) => ta == tb,
        (
            NodeKind::Element {
                tag: tag_a,
                attrs: attrs_a,
            },
            NodeKind::Element {
                tag: tag_b,
                attrs: attrs_b,
            },
        ) => {
            if tag_a != tag_b || attrs_a.len() != attrs_b.len() {
                return false;
            }
            for attr in attrs_a {
                match attrs_b.iter().find(|x| x.name == attr.name) {
                    Some(other) if other.value == attr.value => {}
                    _ => return false,
                }
            }
            let ca = a.children(an);
            let cb = b.children(bn);
            ca.len() == cb.len()
                && ca
                    .iter()
                    .zip(cb.iter())
                    .all(|(&x, &y)| deep_equal_nodes(a, x, b, y))
        }
        _ => false,
    }
}

/// Deep equality ignoring the order of element children.
///
/// Useful when two sources list the same sub-elements in different orders
/// (a common benign discrepancy between catalog exports). Quadratic in the
/// number of children, which is fine for the small fan-outs of record-style
/// documents.
pub fn deep_equal_nodes_unordered(a: &XmlDoc, an: NodeId, b: &XmlDoc, bn: NodeId) -> bool {
    match (a.kind(an), b.kind(bn)) {
        (NodeKind::Text(ta), NodeKind::Text(tb)) => ta == tb,
        (
            NodeKind::Element {
                tag: tag_a,
                attrs: attrs_a,
            },
            NodeKind::Element {
                tag: tag_b,
                attrs: attrs_b,
            },
        ) => {
            if tag_a != tag_b || attrs_a.len() != attrs_b.len() {
                return false;
            }
            for attr in attrs_a {
                match attrs_b.iter().find(|x| x.name == attr.name) {
                    Some(other) if other.value == attr.value => {}
                    _ => return false,
                }
            }
            let ca = a.children(an);
            let cb = b.children(bn);
            if ca.len() != cb.len() {
                return false;
            }
            let mut used = vec![false; cb.len()];
            'outer: for &x in ca {
                for (i, &y) in cb.iter().enumerate() {
                    if !used[i] && deep_equal_nodes_unordered(a, x, b, y) {
                        used[i] = true;
                        continue 'outer;
                    }
                }
                return false;
            }
            true
        }
        _ => false,
    }
}

/// A 64-bit structural fingerprint of the subtree rooted at `node`.
///
/// Two deep-equal subtrees always have equal fingerprints; unequal subtrees
/// collide only with hash probability. Attribute order does not influence
/// the fingerprint (attributes are folded in sorted order), matching the
/// semantics of [`deep_equal_nodes`].
pub fn subtree_fingerprint(doc: &XmlDoc, node: NodeId) -> u64 {
    let mut h = Fnv1a::new();
    fingerprint_into(doc, node, &mut h);
    h.finish()
}

fn fingerprint_into(doc: &XmlDoc, node: NodeId, h: &mut Fnv1a) {
    match doc.kind(node) {
        NodeKind::Text(t) => {
            h.write_u8(0x01);
            h.write_str(t);
        }
        NodeKind::Element { tag, attrs } => {
            h.write_u8(0x02);
            h.write_str(tag);
            // Fold attributes order-insensitively: sort (name, value) pairs.
            if !attrs.is_empty() {
                let mut sorted: Vec<_> = attrs
                    .iter()
                    .map(|a| (a.name.as_str(), a.value.as_str()))
                    .collect();
                sorted.sort_unstable();
                for (name, value) in sorted {
                    h.write_u8(0x03);
                    h.write_str(name);
                    h.write_u8(0x04);
                    h.write_str(value);
                }
            }
            h.write_u8(0x05);
            for &c in doc.children(node) {
                fingerprint_into(doc, c, h);
            }
            h.write_u8(0x06);
        }
    }
}

/// Minimal FNV-1a hasher: tiny, deterministic across runs and platforms,
/// quite sufficient for fingerprint bucketing (HashDoS is not a concern on
/// generated corpora).
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    #[inline]
    fn write_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.write_u8(b);
        }
        // Length terminator so "ab"+"c" != "a"+"bc".
        self.write_u8(0x00);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn identical_docs_are_deep_equal() {
        let a = parse("<a x=\"1\"><b>t</b></a>").unwrap();
        let b = parse("<a x=\"1\"><b>t</b></a>").unwrap();
        assert!(deep_equal(&a, &b));
    }

    #[test]
    fn attribute_order_is_ignored() {
        let a = parse("<a x=\"1\" y=\"2\"/>").unwrap();
        let b = parse("<a y=\"2\" x=\"1\"/>").unwrap();
        assert!(deep_equal(&a, &b));
        assert_eq!(
            subtree_fingerprint(&a, a.root()),
            subtree_fingerprint(&b, b.root())
        );
    }

    #[test]
    fn attribute_value_matters() {
        let a = parse("<a x=\"1\"/>").unwrap();
        let b = parse("<a x=\"2\"/>").unwrap();
        assert!(!deep_equal(&a, &b));
        assert_ne!(
            subtree_fingerprint(&a, a.root()),
            subtree_fingerprint(&b, b.root())
        );
    }

    #[test]
    fn child_order_matters_in_ordered_compare() {
        let a = parse("<a><b/><c/></a>").unwrap();
        let b = parse("<a><c/><b/></a>").unwrap();
        assert!(!deep_equal(&a, &b));
        assert!(deep_equal_nodes_unordered(&a, a.root(), &b, b.root()));
    }

    #[test]
    fn unordered_compare_respects_multiplicity() {
        let a = parse("<a><b/><b/><c/></a>").unwrap();
        let b = parse("<a><b/><c/><c/></a>").unwrap();
        assert!(!deep_equal_nodes_unordered(&a, a.root(), &b, b.root()));
    }

    #[test]
    fn text_content_matters() {
        let a = parse("<a><b>x</b></a>").unwrap();
        let b = parse("<a><b>y</b></a>").unwrap();
        assert!(!deep_equal(&a, &b));
    }

    #[test]
    fn fingerprint_distinguishes_nesting() {
        // <a><b/><c/></a> vs <a><b><c/></b></a>
        let flat = parse("<a><b/><c/></a>").unwrap();
        let nested = parse("<a><b><c/></b></a>").unwrap();
        assert_ne!(
            subtree_fingerprint(&flat, flat.root()),
            subtree_fingerprint(&nested, nested.root())
        );
    }

    #[test]
    fn fingerprint_distinguishes_text_split() {
        let a = parse("<a><b>ab</b><b>c</b></a>").unwrap();
        let b = parse("<a><b>a</b><b>bc</b></a>").unwrap();
        assert_ne!(
            subtree_fingerprint(&a, a.root()),
            subtree_fingerprint(&b, b.root())
        );
    }

    #[test]
    fn fingerprint_equal_for_deep_equal_subtrees_across_docs() {
        let a = parse("<catalog><movie><title>Jaws</title></movie></catalog>").unwrap();
        let b = parse("<other><movie><title>Jaws</title></movie></other>").unwrap();
        let ma = a.first_child_with_tag(a.root(), "movie").unwrap();
        let mb = b.first_child_with_tag(b.root(), "movie").unwrap();
        assert!(deep_equal_nodes(&a, ma, &b, mb));
        assert_eq!(subtree_fingerprint(&a, ma), subtree_fingerprint(&b, mb));
    }
}
