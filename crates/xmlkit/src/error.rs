//! Error type shared by the XML substrate.

use std::fmt;

/// Result alias used throughout the XML substrate.
pub type XmlResult<T> = Result<T, XmlError>;

/// An error raised while parsing or validating XML.
///
/// Every variant carries enough positional context to point a user at the
/// offending byte of the input document. The substrate is used on generated
/// and on hand-written documents, so diagnostics matter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A structural syntax error at a byte offset.
    Syntax {
        /// Byte offset into the input where the problem was detected.
        offset: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A closing tag did not match the currently open element.
    MismatchedTag {
        /// Byte offset of the close tag.
        offset: usize,
        /// Name of the element that is open.
        expected: String,
        /// Name found in the close tag.
        found: String,
    },
    /// An entity reference that the substrate does not understand.
    UnknownEntity {
        /// Byte offset of the `&`.
        offset: usize,
        /// The entity name (without `&`/`;`).
        name: String,
    },
    /// The document contained no root element, or trailing content after it.
    BadDocumentStructure {
        /// Description of the structural issue.
        message: String,
    },
    /// A DTD-lite declaration could not be parsed.
    BadSchema {
        /// Description of the schema problem.
        message: String,
    },
    /// A document failed validation against a [`crate::Schema`].
    Invalid {
        /// Description of the validity violation.
        message: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::MismatchedTag {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched close tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnknownEntity { offset, name } => {
                write!(f, "unknown entity &{name}; at byte {offset}")
            }
            XmlError::BadDocumentStructure { message } => {
                write!(f, "bad document structure: {message}")
            }
            XmlError::BadSchema { message } => write!(f, "bad schema: {message}"),
            XmlError::Invalid { message } => write!(f, "document invalid: {message}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XmlError::Syntax {
            offset: 12,
            message: "expected '>'".into(),
        };
        let s = e.to_string();
        assert!(s.contains("byte 12"));
        assert!(s.contains("expected '>'"));
    }

    #[test]
    fn mismatched_tag_display_names_both_tags() {
        let e = XmlError::MismatchedTag {
            offset: 3,
            expected: "movie".into(),
            found: "title".into(),
        };
        let s = e.to_string();
        assert!(s.contains("</movie>"));
        assert!(s.contains("</title>"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XmlError>();
    }
}
