//! Escaping and unescaping of XML character data and attribute values.

use std::borrow::Cow;

/// Escape a string for use as XML character data (element text content).
///
/// Only escapes what must be escaped (`&`, `<`, `>`); returns a borrowed
/// `Cow` when no escaping is required, which is the overwhelmingly common
/// case for the movie/address-book corpora.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_impl(s, false)
}

/// Escape a string for use inside a double-quoted attribute value.
///
/// Escapes `&`, `<`, `>` and `"`.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_impl(s, true)
}

fn escape_impl(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| b == b'&' || b == b'<' || b == b'>' || (attr && b == b'"'));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolve a predefined or character entity name to its replacement text.
///
/// `name` is the content between `&` and `;`. Supports the five XML
/// predefined entities plus decimal (`#nnn`) and hexadecimal (`#xhh`)
/// character references. Returns `None` for anything else.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = name.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_borrowed() {
        assert!(matches!(escape_text("Die Hard"), Cow::Borrowed(_)));
    }

    #[test]
    fn ampersand_and_angles_escaped() {
        assert_eq!(escape_text("Tom & Jerry <3"), "Tom &amp; Jerry &lt;3");
        assert_eq!(escape_text("a>b"), "a&gt;b");
    }

    #[test]
    fn attr_escapes_quotes_text_does_not() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
        assert_eq!(escape_text(r#"say "hi""#), r#"say "hi""#);
    }

    #[test]
    fn resolve_predefined_entities() {
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("apos"), Some('\''));
    }

    #[test]
    fn resolve_character_references() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#x263A"), Some('\u{263A}'));
    }

    #[test]
    fn resolve_rejects_garbage() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        // Surrogate code point is not a valid char.
        assert_eq!(resolve_entity("#xD800"), None);
    }

    #[test]
    fn escape_unescape_roundtrip() {
        let original = r#"<a attr="v&x">1 < 2 && 3 > 2</a>"#;
        let escaped = escape_attr(original);
        // Manually unescape via resolve_entity.
        let mut out = String::new();
        let mut rest = escaped.as_ref();
        while let Some(pos) = rest.find('&') {
            out.push_str(&rest[..pos]);
            let semi = rest[pos..].find(';').unwrap() + pos;
            out.push(resolve_entity(&rest[pos + 1..semi]).unwrap());
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        assert_eq!(out, original);
    }
}
