//! # imprecise-xmlkit — XML substrate for IMPrECISE
//!
//! The IMPrECISE paper (ICDE 2008) implements probabilistic data integration
//! as an XQuery module on top of the MonetDB/XQuery DBMS. This crate is the
//! corresponding substrate of the reproduction: a small, dependency-free,
//! in-memory XML toolkit providing exactly what the probabilistic layers
//! need:
//!
//! * a tokenizing [`parser`] for data-centric XML 1.0 documents
//!   (elements, attributes, text, comments, CDATA, character/entity
//!   references, and an optional internal DTD subset),
//! * an arena-based DOM ([`doc::XmlDoc`]) with cheap [`doc::NodeId`] handles,
//! * a [`serialize`] module (compact and pretty-printed output),
//! * structural [`eq`]uality and subtree hashing (the paper's *deep-equal*
//!   generic rule is built on this),
//! * a DTD-lite [`schema`] describing per-tag child cardinalities — the
//!   semantic knowledge the paper uses to reject impossible possibilities
//!   ("the DTD specified that persons only have one phone number").
//!
//! The toolkit is deliberately small and predictable rather than a general
//! XML library: namespaces, processing instructions and DOCTYPE external
//! subsets are out of scope for the reproduction (the paper's movie and
//! address-book documents use none of them).
//!
//! ## Quick example
//!
//! ```
//! use imprecise_xmlkit::{parse, serialize::to_string};
//!
//! let doc = parse("<addressbook><person><nm>John</nm></person></addressbook>").unwrap();
//! let root = doc.root();
//! assert_eq!(doc.tag(root), Some("addressbook"));
//! assert_eq!(to_string(&doc), "<addressbook><person><nm>John</nm></person></addressbook>");
//! ```

pub mod doc;
pub mod eq;
pub mod error;
pub mod escape;
pub mod parser;
pub mod path;
pub mod schema;
pub mod serialize;

pub use doc::{Attr, NodeId, NodeKind, XmlDoc};
pub use eq::{deep_equal, deep_equal_nodes, subtree_fingerprint};
pub use error::{XmlError, XmlResult};
pub use parser::{parse, parse_with_options, ParseOptions};
pub use schema::{Cardinality, ContentModel, Schema};
pub use serialize::{to_pretty_string, to_string};
