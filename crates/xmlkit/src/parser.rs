//! A recursive-descent parser for data-centric XML 1.0.
//!
//! Supported: elements, attributes, character data, the five predefined
//! entities plus character references, comments, CDATA sections, the XML
//! declaration / processing instructions (skipped), and a `<!DOCTYPE …[ … ]>`
//! internal subset whose `<!ELEMENT …>` declarations are collected into a
//! DTD-lite [`Schema`]. Not supported (rejected or skipped, see code):
//! namespaces-as-semantics (prefixes are kept as part of the tag string),
//! external DTD subsets, parameter entities.

use crate::doc::{NodeId, XmlDoc};
use crate::error::{XmlError, XmlResult};
use crate::escape::resolve_entity;
use crate::schema::Schema;

/// How the parser treats character data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TextPolicy {
    /// Drop whitespace-only text nodes and trim leading/trailing whitespace
    /// from the rest. The right choice for data-centric documents like the
    /// paper's address books and movie catalogs, and the default.
    #[default]
    TrimAndDropBlank,
    /// Keep character data exactly as written.
    Preserve,
}

/// Parser configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseOptions {
    /// Character-data policy (see [`TextPolicy`]).
    pub text: TextPolicy,
}

/// Result of [`parse_full`]: the document plus any schema found in the
/// internal DTD subset.
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The parsed document.
    pub doc: XmlDoc,
    /// Schema assembled from `<!ELEMENT …>` declarations, if a DOCTYPE with
    /// an internal subset was present.
    pub schema: Option<Schema>,
}

/// Parse a document with default options, returning only the tree.
pub fn parse(input: &str) -> XmlResult<XmlDoc> {
    parse_with_options(input, ParseOptions::default())
}

/// Parse a document with explicit options, returning only the tree.
pub fn parse_with_options(input: &str, options: ParseOptions) -> XmlResult<XmlDoc> {
    parse_full(input, options).map(|p| p.doc)
}

/// Parse a document and also return the DTD-lite schema declared in its
/// internal subset, if any.
pub fn parse_full(input: &str, options: ParseOptions) -> XmlResult<Parsed> {
    let mut p = Parser {
        input: input.as_bytes(),
        text: input,
        pos: 0,
        options,
    };
    p.parse_document()
}

struct Parser<'a> {
    input: &'a [u8],
    text: &'a str,
    pos: usize,
    options: ParseOptions,
}

impl<'a> Parser<'a> {
    fn parse_document(&mut self) -> XmlResult<Parsed> {
        // Optional UTF-8 BOM.
        if self.text.as_bytes().starts_with(&[0xEF, 0xBB, 0xBF]) {
            self.pos = 3;
        }
        let mut schema: Option<Schema> = None;
        // Prolog: whitespace, XML declaration, PIs, comments, DOCTYPE.
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                schema = self.parse_doctype()?;
            } else {
                break;
            }
        }
        if !self.starts_with("<") {
            return Err(XmlError::BadDocumentStructure {
                message: "expected a root element".into(),
            });
        }
        let mut doc = self.parse_root_element()?;
        // Epilog: only whitespace / comments / PIs allowed.
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else {
                break;
            }
        }
        if self.pos != self.input.len() {
            return Err(XmlError::BadDocumentStructure {
                message: format!("trailing content at byte {}", self.pos),
            });
        }
        // Shrink-to-fit is irrelevant for arena Vec; leave as built.
        let _ = &mut doc;
        Ok(Parsed { doc, schema })
    }

    fn parse_root_element(&mut self) -> XmlResult<XmlDoc> {
        self.expect(b'<')?;
        let tag = self.read_name("element name")?;
        let mut doc = XmlDoc::new(tag);
        let root = doc.root();
        let self_closing = self.parse_attrs_and_tag_end(&mut doc, root)?;
        if !self_closing {
            self.parse_content(&mut doc, root)?;
        }
        Ok(doc)
    }

    /// Parse attributes and the `>` / `/>` terminator for the element whose
    /// open tag we are inside. Returns true when the tag was self-closing.
    fn parse_attrs_and_tag_end(&mut self, doc: &mut XmlDoc, el: NodeId) -> XmlResult<bool> {
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(false);
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(true);
                }
                Some(_) => {
                    let name = self.read_name("attribute name")?;
                    self.skip_whitespace();
                    self.expect(b'=')?;
                    self.skip_whitespace();
                    let value = self.read_attr_value()?;
                    doc.set_attr(el, name, value);
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "element open tag",
                    })
                }
            }
        }
    }

    /// Parse element content until (and including) the matching close tag.
    fn parse_content(&mut self, doc: &mut XmlDoc, el: NodeId) -> XmlResult<()> {
        let mut text_buf = String::new();
        loop {
            if self.pos >= self.input.len() {
                return Err(XmlError::UnexpectedEof {
                    context: "element content",
                });
            }
            if self.starts_with("</") {
                self.flush_text(doc, el, &mut text_buf);
                self.pos += 2;
                let offset = self.pos;
                let name = self.read_name("close tag name")?;
                self.skip_whitespace();
                self.expect(b'>')?;
                // lint:allow(expect-in-lib, holds by construction: content parent is an element)
                let open = doc.tag(el).expect("content parent is an element");
                if name != open {
                    return Err(XmlError::MismatchedTag {
                        offset,
                        expected: open.to_string(),
                        found: name,
                    });
                }
                return Ok(());
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<![CDATA[") {
                let data = self.read_cdata()?;
                text_buf.push_str(data);
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<") {
                self.flush_text(doc, el, &mut text_buf);
                self.pos += 1;
                let tag = self.read_name("element name")?;
                let child = doc.add_element(el, tag);
                let self_closing = self.parse_attrs_and_tag_end(doc, child)?;
                if !self_closing {
                    self.parse_content(doc, child)?;
                }
            } else {
                self.read_char_data(&mut text_buf)?;
            }
        }
    }

    fn flush_text(&self, doc: &mut XmlDoc, el: NodeId, buf: &mut String) {
        if buf.is_empty() {
            return;
        }
        match self.options.text {
            TextPolicy::Preserve => {
                doc.add_text(el, buf.clone());
            }
            TextPolicy::TrimAndDropBlank => {
                let trimmed = buf.trim();
                if !trimmed.is_empty() {
                    doc.add_text(el, trimmed.to_string());
                }
            }
        }
        buf.clear();
    }

    /// Read raw character data up to the next `<`, resolving entities.
    fn read_char_data(&mut self, out: &mut String) -> XmlResult<()> {
        while let Some(b) = self.peek() {
            match b {
                b'<' => break,
                b'&' => {
                    let offset = self.pos;
                    self.pos += 1;
                    let semi = self.find_byte(b';').ok_or(XmlError::UnexpectedEof {
                        context: "entity reference",
                    })?;
                    let name = &self.text[self.pos..semi];
                    let c = resolve_entity(name).ok_or_else(|| XmlError::UnknownEntity {
                        offset,
                        name: name.to_string(),
                    })?;
                    out.push(c);
                    self.pos = semi + 1;
                }
                _ => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.text[start..self.pos]);
                }
            }
        }
        Ok(())
    }

    fn read_attr_value(&mut self) -> XmlResult<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(XmlError::Syntax {
                    offset: self.pos,
                    message: "expected quoted attribute value".into(),
                })
            }
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "attribute value",
                    })
                }
                Some(b) if b == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => {
                    let offset = self.pos;
                    self.pos += 1;
                    let semi = self.find_byte(b';').ok_or(XmlError::UnexpectedEof {
                        context: "entity reference",
                    })?;
                    let name = &self.text[self.pos..semi];
                    let c = resolve_entity(name).ok_or_else(|| XmlError::UnknownEntity {
                        offset,
                        name: name.to_string(),
                    })?;
                    out.push(c);
                    self.pos = semi + 1;
                }
                Some(b'<') => {
                    return Err(XmlError::Syntax {
                        offset: self.pos,
                        message: "'<' not allowed in attribute value".into(),
                    })
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.input.len() && !self.text.is_char_boundary(end) {
                        end += 1;
                    }
                    out.push_str(&self.text[start..end]);
                    self.pos = end;
                }
            }
        }
    }

    fn read_name(&mut self, what: &'static str) -> XmlResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric()
                || b == b'_'
                || b == b'-'
                || b == b'.'
                || b == b':'
                || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::Syntax {
                offset: start,
                message: format!("expected {what}"),
            });
        }
        let first = self.input[start];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(XmlError::Syntax {
                offset: start,
                message: format!("{what} may not start with '{}'", first as char),
            });
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn read_cdata(&mut self) -> XmlResult<&'a str> {
        debug_assert!(self.starts_with("<![CDATA["));
        self.pos += "<![CDATA[".len();
        let rest = &self.text[self.pos..];
        let end = rest.find("]]>").ok_or(XmlError::UnexpectedEof {
            context: "CDATA section",
        })?;
        let data = &rest[..end];
        self.pos += end + 3;
        Ok(data)
    }

    fn skip_comment(&mut self) -> XmlResult<()> {
        debug_assert!(self.starts_with("<!--"));
        self.pos += 4;
        let rest = &self.text[self.pos..];
        let end = rest
            .find("-->")
            .ok_or(XmlError::UnexpectedEof { context: "comment" })?;
        self.pos += end + 3;
        Ok(())
    }

    fn skip_pi(&mut self) -> XmlResult<()> {
        debug_assert!(self.starts_with("<?"));
        self.pos += 2;
        let rest = &self.text[self.pos..];
        let end = rest.find("?>").ok_or(XmlError::UnexpectedEof {
            context: "processing instruction",
        })?;
        self.pos += end + 2;
        Ok(())
    }

    /// Parse `<!DOCTYPE name [ internal-subset ]>` (external ids are
    /// tolerated and ignored). Returns a schema when `<!ELEMENT>`
    /// declarations are present.
    fn parse_doctype(&mut self) -> XmlResult<Option<Schema>> {
        debug_assert!(self.starts_with("<!DOCTYPE"));
        self.pos += "<!DOCTYPE".len();
        self.skip_whitespace();
        let _root_name = self.read_name("doctype name")?;
        // Scan forward; an optional `[...]` internal subset may appear before
        // the closing `>`.
        let mut schema = Schema::new();
        let mut saw_decl = false;
        loop {
            self.skip_whitespace();
            match self.peek() {
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "DOCTYPE declaration",
                    })
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'[') => {
                    self.pos += 1;
                    loop {
                        self.skip_whitespace();
                        if self.starts_with("]") {
                            self.pos += 1;
                            break;
                        } else if self.starts_with("<!ELEMENT") {
                            let end = self.find_byte(b'>').ok_or(XmlError::UnexpectedEof {
                                context: "ELEMENT declaration",
                            })?;
                            let decl = &self.text[self.pos..=end];
                            schema.add_element_decl(decl)?;
                            saw_decl = true;
                            self.pos = end + 1;
                        } else if self.starts_with("<!--") {
                            self.skip_comment()?;
                        } else if self.starts_with("<!") || self.starts_with("<?") {
                            // ATTLIST / ENTITY / NOTATION / PI: skip to '>'.
                            let end = self.find_byte(b'>').ok_or(XmlError::UnexpectedEof {
                                context: "markup declaration",
                            })?;
                            self.pos = end + 1;
                        } else {
                            return Err(XmlError::Syntax {
                                offset: self.pos,
                                message: "unexpected content in DTD internal subset".into(),
                            });
                        }
                    }
                }
                Some(_) => {
                    // SYSTEM/PUBLIC external id tokens: skip one token.
                    while let Some(b) = self.peek() {
                        if b.is_ascii_whitespace() || b == b'[' || b == b'>' {
                            break;
                        }
                        if b == b'"' || b == b'\'' {
                            let q = b;
                            self.pos += 1;
                            while let Some(c) = self.peek() {
                                self.pos += 1;
                                if c == q {
                                    break;
                                }
                            }
                            break;
                        }
                        self.pos += 1;
                    }
                }
            }
        }
        Ok(if saw_decl { Some(schema) } else { None })
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn expect(&mut self, b: u8) -> XmlResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::Syntax {
                offset: self.pos,
                message: format!("expected '{}'", b as char),
            })
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn find_byte(&self, b: u8) -> Option<usize> {
        self.input[self.pos..]
            .iter()
            .position(|&x| x == b)
            .map(|i| i + self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::to_string;

    #[test]
    fn parse_minimal() {
        let d = parse("<a/>").unwrap();
        assert_eq!(d.tag(d.root()), Some("a"));
        assert!(d.children(d.root()).is_empty());
    }

    #[test]
    fn parse_nested_with_text() {
        let d = parse("<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>")
            .unwrap();
        let person = d.first_child_with_tag(d.root(), "person").unwrap();
        let nm = d.first_child_with_tag(person, "nm").unwrap();
        assert_eq!(d.text_content(nm), "John");
    }

    #[test]
    fn parse_attributes() {
        let d = parse(r#"<movie year="1995" genre='Horror'/>"#).unwrap();
        assert_eq!(d.attr(d.root(), "year"), Some("1995"));
        assert_eq!(d.attr(d.root(), "genre"), Some("Horror"));
    }

    #[test]
    fn whitespace_dropped_by_default() {
        let d = parse("<a>\n  <b>x</b>\n  <c> y </c>\n</a>").unwrap();
        assert_eq!(d.children(d.root()).len(), 2);
        let c = d.first_child_with_tag(d.root(), "c").unwrap();
        assert_eq!(d.text_content(c), "y");
    }

    #[test]
    fn whitespace_preserved_on_request() {
        let opts = ParseOptions {
            text: TextPolicy::Preserve,
        };
        let d = parse_with_options("<a> <b>x</b> </a>", opts).unwrap();
        assert_eq!(d.children(d.root()).len(), 3);
    }

    #[test]
    fn entities_resolved() {
        let d = parse("<a>Tom &amp; Jerry &lt;3 &#65;</a>").unwrap();
        assert_eq!(d.text_content(d.root()), "Tom & Jerry <3 A");
    }

    #[test]
    fn entities_in_attribute() {
        let d = parse(r#"<a t="x&amp;y"/>"#).unwrap();
        assert_eq!(d.attr(d.root(), "t"), Some("x&y"));
    }

    #[test]
    fn unknown_entity_rejected() {
        let e = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(e, XmlError::UnknownEntity { .. }));
    }

    #[test]
    fn comments_and_pis_skipped() {
        let d = parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/><?pi data?></a>")
            .unwrap();
        assert_eq!(d.children(d.root()).len(), 1);
    }

    #[test]
    fn cdata_preserved() {
        let d = parse("<a><![CDATA[1 < 2 & 3]]></a>").unwrap();
        assert_eq!(d.text_content(d.root()), "1 < 2 & 3");
    }

    #[test]
    fn mismatched_tag_detected() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(e, XmlError::MismatchedTag { .. }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse("<a/><b/>").unwrap_err();
        assert!(matches!(e, XmlError::BadDocumentStructure { .. }));
    }

    #[test]
    fn unterminated_document_rejected() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn doctype_with_internal_subset_yields_schema() {
        let input = r#"<!DOCTYPE addressbook [
            <!ELEMENT addressbook (person*)>
            <!ELEMENT person (nm, tel?)>
            <!ELEMENT nm (#PCDATA)>
            <!ELEMENT tel (#PCDATA)>
        ]>
        <addressbook><person><nm>John</nm></person></addressbook>"#;
        let parsed = parse_full(input, ParseOptions::default()).unwrap();
        let schema = parsed.schema.expect("schema present");
        assert!(schema.max_occurs("person", "nm").is_some());
    }

    #[test]
    fn doctype_without_subset_is_skipped() {
        let parsed =
            parse_full("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>", ParseOptions::default()).unwrap();
        assert!(parsed.schema.is_none());
        assert_eq!(parsed.doc.tag(parsed.doc.root()), Some("a"));
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let src =
            "<addressbook><person rating=\"A&amp;B\"><nm>Jo &amp; Ann</nm></person></addressbook>";
        let d = parse(src).unwrap();
        let out = to_string(&d);
        let d2 = parse(&out).unwrap();
        assert!(crate::eq::deep_equal(&d, &d2));
    }

    #[test]
    fn utf8_content_survives() {
        let d = parse("<a t=\"snövit\">Amélie — ★</a>").unwrap();
        assert_eq!(d.text_content(d.root()), "Amélie — ★");
        assert_eq!(d.attr(d.root(), "t"), Some("snövit"));
    }
}
