//! Small navigation helpers used across the reproduction.
//!
//! These are not the query language (that lives in `imprecise-query`); they
//! are the handful of tree-walking utilities that the integration engine
//! and the generators need: slash-separated child paths, descendant
//! collection by tag, and root-path computation.

use crate::doc::{NodeId, XmlDoc};

/// Resolve a simple slash-separated child path (`"person/nm"`) starting at
/// `from`, returning the first match.
///
/// Each step moves to the first element child with the given tag. Returns
/// `None` as soon as a step has no match. An empty path returns `from`.
pub fn first_at_path(doc: &XmlDoc, from: NodeId, path: &str) -> Option<NodeId> {
    let mut cur = from;
    for step in path.split('/').filter(|s| !s.is_empty()) {
        cur = doc.first_child_with_tag(cur, step)?;
    }
    Some(cur)
}

/// Text content of the first node at a slash-separated path, if it exists.
pub fn text_at_path(doc: &XmlDoc, from: NodeId, path: &str) -> Option<String> {
    first_at_path(doc, from, path).map(|n| doc.text_content(n))
}

/// All descendant elements (including `from` itself if it matches) with the
/// given tag, in document order.
pub fn descendants_with_tag(doc: &XmlDoc, from: NodeId, tag: &str) -> Vec<NodeId> {
    doc.descendants(from)
        .filter(|&n| doc.tag(n) == Some(tag))
        .collect()
}

/// The chain of ancestors from the root down to `node` (inclusive).
pub fn root_path(doc: &XmlDoc, node: NodeId) -> Vec<NodeId> {
    let mut path = Vec::new();
    let mut cur = Some(node);
    while let Some(n) = cur {
        path.push(n);
        cur = doc.parent(n);
    }
    path.reverse();
    path
}

/// Depth of `node` (root has depth 0).
pub fn depth(doc: &XmlDoc, node: NodeId) -> usize {
    let mut d = 0;
    let mut cur = doc.parent(node);
    while let Some(n) = cur {
        d += 1;
        cur = doc.parent(n);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn doc() -> XmlDoc {
        parse(
            "<catalog><movie><title>Jaws</title><genre>Horror</genre></movie>\
             <movie><title>Jaws 2</title><genre>Horror</genre></movie></catalog>",
        )
        .unwrap()
    }

    #[test]
    fn path_resolution() {
        let d = doc();
        let title = first_at_path(&d, d.root(), "movie/title").unwrap();
        assert_eq!(d.text_content(title), "Jaws");
        assert_eq!(
            text_at_path(&d, d.root(), "movie/genre"),
            Some("Horror".to_string())
        );
        assert!(first_at_path(&d, d.root(), "movie/rating").is_none());
    }

    #[test]
    fn empty_path_is_identity() {
        let d = doc();
        assert_eq!(first_at_path(&d, d.root(), ""), Some(d.root()));
        assert_eq!(first_at_path(&d, d.root(), "///"), Some(d.root()));
    }

    #[test]
    fn descendant_collection() {
        let d = doc();
        let titles = descendants_with_tag(&d, d.root(), "title");
        assert_eq!(titles.len(), 2);
        assert_eq!(d.text_content(titles[1]), "Jaws 2");
    }

    #[test]
    fn root_path_and_depth() {
        let d = doc();
        let title = first_at_path(&d, d.root(), "movie/title").unwrap();
        let path = root_path(&d, title);
        assert_eq!(path.first().copied(), Some(d.root()));
        assert_eq!(path.last().copied(), Some(title));
        assert_eq!(path.len(), 3);
        assert_eq!(depth(&d, title), 2);
        assert_eq!(depth(&d, d.root()), 0);
    }
}
