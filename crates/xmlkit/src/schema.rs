//! DTD-lite content models.
//!
//! The paper uses DTD knowledge to reject impossible worlds during
//! integration: *"the DTD specified that persons also only have one phone
//! number, hence the possibility of John having two phone numbers is
//! rejected"*. This module provides the corresponding machinery: per-tag
//! content models with child cardinalities, parsed from `<!ELEMENT …>`
//! declarations or built programmatically.
//!
//! The grammar accepted is the practically useful subset of DTD content
//! models: `EMPTY`, `ANY`, `(#PCDATA)`, mixed content
//! `(#PCDATA | a | b)*`, and sequence/choice groups of named children with
//! `?`, `*`, `+` occurrence markers. Nested groups are flattened, combining
//! occurrence markers conservatively (a child inside `( … )*` is recorded as
//! repeatable regardless of its inner marker). What integration needs from
//! the schema is exactly the per-(parent, child) *cardinality*, so the
//! flattening loses nothing relevant.

use crate::doc::{NodeId, XmlDoc};
use crate::error::{XmlError, XmlResult};
use std::collections::BTreeMap;
use std::fmt;

/// How many times a child tag may occur under its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// Exactly one (`a`).
    One,
    /// Zero or one (`a?`).
    Optional,
    /// Zero or more (`a*`).
    Many,
    /// One or more (`a+`).
    OneOrMore,
}

impl Cardinality {
    /// True when at most one occurrence is allowed — the property that turns
    /// a merge conflict into a mutually exclusive choice.
    #[inline]
    pub fn is_single(self) -> bool {
        matches!(self, Cardinality::One | Cardinality::Optional)
    }

    /// True when at least one occurrence is required.
    #[inline]
    pub fn is_required(self) -> bool {
        matches!(self, Cardinality::One | Cardinality::OneOrMore)
    }

    /// Combine an inner occurrence marker with an enclosing group's marker
    /// (e.g. `b?` inside `( … )*` behaves like `b*`).
    fn under(self, outer: Cardinality) -> Cardinality {
        use Cardinality::*;
        match (outer, self) {
            (One, inner) => inner,
            (Optional, One) => Optional,
            (Optional, inner) => match inner {
                OneOrMore => Many,
                other => other,
            },
            (Many, _) => Many,
            (OneOrMore, One) => OneOrMore,
            (OneOrMore, OneOrMore) => OneOrMore,
            (OneOrMore, _) => Many,
        }
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cardinality::One => "1",
            Cardinality::Optional => "?",
            Cardinality::Many => "*",
            Cardinality::OneOrMore => "+",
        };
        f.write_str(s)
    }
}

/// A named child slot in a flattened content model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildSpec {
    /// Child tag name.
    pub tag: String,
    /// Allowed occurrences.
    pub card: Cardinality,
    /// True when the slot came from a choice group: its minimum occurrence
    /// is not individually enforced during validation.
    pub from_choice: bool,
}

/// Content model of one element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY` — no children at all.
    Empty,
    /// `ANY` — anything goes (also the behaviour for undeclared elements).
    Any,
    /// `(#PCDATA)` — text only.
    Pcdata,
    /// `(#PCDATA | a | b)*` — text mixed with the listed child tags.
    Mixed(Vec<String>),
    /// Element content: a flattened sequence of child slots.
    Children(Vec<ChildSpec>),
}

/// A DTD-lite schema: a map from element tag to its content model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    models: BTreeMap<String, ContentModel>,
}

impl Schema {
    /// Create an empty schema (every element implicitly `ANY`).
    pub fn new() -> Self {
        Schema::default()
    }

    /// Parse a string of `<!ELEMENT …>` declarations (whitespace/comments
    /// between declarations are ignored).
    pub fn parse(dtd: &str) -> XmlResult<Self> {
        let mut schema = Schema::new();
        let mut rest = dtd;
        loop {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            if let Some(after) = rest.strip_prefix("<!--") {
                let end = after.find("-->").ok_or(XmlError::UnexpectedEof {
                    context: "comment in DTD",
                })?;
                rest = &after[end + 3..];
                continue;
            }
            if rest.starts_with("<!ELEMENT") {
                let end = rest.find('>').ok_or(XmlError::UnexpectedEof {
                    context: "ELEMENT declaration",
                })?;
                schema.add_element_decl(&rest[..=end])?;
                rest = &rest[end + 1..];
                continue;
            }
            return Err(XmlError::BadSchema {
                message: format!(
                    "expected <!ELEMENT …> declaration, found: {}",
                    &rest[..rest.len().min(30)]
                ),
            });
        }
        Ok(schema)
    }

    /// Add one `<!ELEMENT name model>` declaration.
    pub fn add_element_decl(&mut self, decl: &str) -> XmlResult<()> {
        let body = decl
            .trim()
            .strip_prefix("<!ELEMENT")
            .and_then(|s| s.strip_suffix('>'))
            .ok_or_else(|| XmlError::BadSchema {
                message: format!("not an ELEMENT declaration: {decl}"),
            })?
            .trim();
        let (name, model_src) =
            body.split_once(char::is_whitespace)
                .ok_or_else(|| XmlError::BadSchema {
                    message: format!("missing content model in: {decl}"),
                })?;
        let model = parse_content_model(model_src.trim())?;
        self.models.insert(name.to_string(), model);
        Ok(())
    }

    /// Programmatically declare an element with sequence content.
    pub fn declare(&mut self, tag: impl Into<String>, children: &[(&str, Cardinality)]) {
        let specs = children
            .iter()
            .map(|(t, c)| ChildSpec {
                tag: (*t).to_string(),
                card: *c,
                from_choice: false,
            })
            .collect();
        self.models
            .insert(tag.into(), ContentModel::Children(specs));
    }

    /// Programmatically declare a text-only element.
    pub fn declare_text(&mut self, tag: impl Into<String>) {
        self.models.insert(tag.into(), ContentModel::Pcdata);
    }

    /// The content model declared for `tag`, if any.
    pub fn model(&self, tag: &str) -> Option<&ContentModel> {
        self.models.get(tag)
    }

    /// Number of declared element types.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when nothing has been declared.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Cardinality of `child` under `parent`, if the schema pins it down.
    ///
    /// Returns `None` when the parent is undeclared, declared `ANY`, or does
    /// not mention the child — in which case integration falls back to
    /// treating the child as repeatable (no knowledge ⇒ no pruning, exactly
    /// the paper's "too little semantical knowledge" regime).
    pub fn max_occurs(&self, parent: &str, child: &str) -> Option<Cardinality> {
        match self.models.get(parent)? {
            ContentModel::Children(specs) => specs.iter().find(|s| s.tag == child).map(|s| s.card),
            ContentModel::Mixed(tags) => {
                tags.iter().any(|t| t == child).then_some(Cardinality::Many)
            }
            _ => None,
        }
    }

    /// True when the schema says `child` occurs at most once under `parent`.
    pub fn is_single_valued(&self, parent: &str, child: &str) -> bool {
        self.max_occurs(parent, child)
            .is_some_and(Cardinality::is_single)
    }

    /// Validate a document against the schema.
    ///
    /// Checks, for every element with a declared model: `EMPTY` elements
    /// have no children; `PCDATA` elements have no element children;
    /// element-content elements have no text children, no undeclared child
    /// tags, and per-tag occurrence counts within the declared cardinality.
    /// (Sequence *order* is not enforced: integrated documents interleave
    /// children from two sources, and the paper's engine is order-agnostic.)
    pub fn validate(&self, doc: &XmlDoc) -> XmlResult<()> {
        self.validate_node(doc, doc.root())
    }

    fn validate_node(&self, doc: &XmlDoc, node: NodeId) -> XmlResult<()> {
        if let Some(tag) = doc.tag(node) {
            if let Some(model) = self.models.get(tag) {
                self.check_element(doc, node, tag, model)?;
            }
            for &c in doc.children(node) {
                self.validate_node(doc, c)?;
            }
        }
        Ok(())
    }

    fn check_element(
        &self,
        doc: &XmlDoc,
        node: NodeId,
        tag: &str,
        model: &ContentModel,
    ) -> XmlResult<()> {
        let children = doc.children(node);
        match model {
            ContentModel::Any => Ok(()),
            ContentModel::Empty => {
                if children.is_empty() {
                    Ok(())
                } else {
                    Err(XmlError::Invalid {
                        message: format!("<{tag}> is declared EMPTY but has children"),
                    })
                }
            }
            ContentModel::Pcdata => {
                if children.iter().any(|&c| doc.is_element(c)) {
                    Err(XmlError::Invalid {
                        message: format!("<{tag}> is declared (#PCDATA) but has element children"),
                    })
                } else {
                    Ok(())
                }
            }
            ContentModel::Mixed(tags) => {
                for &c in children {
                    if let Some(child_tag) = doc.tag(c) {
                        if !tags.iter().any(|t| t == child_tag) {
                            return Err(XmlError::Invalid {
                                message: format!(
                                    "<{child_tag}> not allowed in mixed content of <{tag}>"
                                ),
                            });
                        }
                    }
                }
                Ok(())
            }
            ContentModel::Children(specs) => {
                if children.iter().any(|&c| doc.is_text(c)) {
                    return Err(XmlError::Invalid {
                        message: format!("text not allowed inside <{tag}> (element content)"),
                    });
                }
                let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
                for &c in children {
                    // lint:allow(expect-in-lib, holds by construction: element child)
                    let child_tag = doc.tag(c).expect("element child");
                    let spec = specs.iter().find(|s| s.tag == child_tag).ok_or_else(|| {
                        XmlError::Invalid {
                            message: format!("<{child_tag}> not allowed inside <{tag}>"),
                        }
                    })?;
                    let n = counts.entry(spec.tag.as_str()).or_insert(0);
                    *n += 1;
                    if spec.card.is_single() && *n > 1 {
                        return Err(XmlError::Invalid {
                            message: format!(
                                "<{child_tag}> occurs {n} times inside <{tag}> but cardinality is {}",
                                spec.card
                            ),
                        });
                    }
                }
                for spec in specs {
                    if spec.card.is_required()
                        && !spec.from_choice
                        && !counts.contains_key(spec.tag.as_str())
                    {
                        return Err(XmlError::Invalid {
                            message: format!("required child <{}> missing in <{tag}>", spec.tag),
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

/// Parse a DTD content model expression into a flattened [`ContentModel`].
fn parse_content_model(src: &str) -> XmlResult<ContentModel> {
    let src = src.trim();
    match src {
        "EMPTY" => return Ok(ContentModel::Empty),
        "ANY" => return Ok(ContentModel::Any),
        "(#PCDATA)" | "( #PCDATA )" => return Ok(ContentModel::Pcdata),
        _ => {}
    }
    if !src.starts_with('(') {
        return Err(XmlError::BadSchema {
            message: format!("content model must be EMPTY, ANY or a group: {src}"),
        });
    }
    // Mixed content: (#PCDATA | a | b)* or (#PCDATA).
    let inner_for_mixed = src
        .trim_end_matches('*')
        .trim()
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .map(str::trim);
    if let Some(inner) = inner_for_mixed {
        if inner.starts_with("#PCDATA") {
            let tags: Vec<String> = inner
                .split('|')
                .skip(1)
                .map(|t| t.trim().to_string())
                .filter(|t| !t.is_empty())
                .collect();
            return Ok(if tags.is_empty() {
                ContentModel::Pcdata
            } else {
                ContentModel::Mixed(tags)
            });
        }
    }
    let mut specs = Vec::new();
    let mut pos = 0usize;
    parse_group(src.as_bytes(), src, &mut pos, Cardinality::One, &mut specs)?;
    // Trailing occurrence marker on the outermost group was consumed by
    // parse_group; ensure nothing but whitespace remains.
    if src[pos..].trim() != "" {
        return Err(XmlError::BadSchema {
            message: format!("trailing content in model: {}", &src[pos..]),
        });
    }
    // Deduplicate repeated mentions (e.g. from choices) keeping the loosest
    // cardinality.
    let mut merged: Vec<ChildSpec> = Vec::with_capacity(specs.len());
    for spec in specs {
        if let Some(existing) = merged.iter_mut().find(|s| s.tag == spec.tag) {
            existing.card = loosest(existing.card, spec.card);
            existing.from_choice = existing.from_choice || spec.from_choice;
        } else {
            merged.push(spec);
        }
    }
    Ok(ContentModel::Children(merged))
}

fn loosest(a: Cardinality, b: Cardinality) -> Cardinality {
    use Cardinality::*;
    match (a, b) {
        (Many, _) | (_, Many) => Many,
        (Optional, OneOrMore) | (OneOrMore, Optional) => Many,
        (Optional, _) | (_, Optional) => Optional,
        (OneOrMore, _) | (_, OneOrMore) => OneOrMore,
        (One, One) => One,
    }
}

/// Recursive-descent parse of a `( … )` group starting at `pos` (which must
/// point at `(`). Appends flattened child specs. `outer` is the occurrence
/// context contributed by enclosing groups.
fn parse_group(
    bytes: &[u8],
    src: &str,
    pos: &mut usize,
    outer: Cardinality,
    specs: &mut Vec<ChildSpec>,
) -> XmlResult<()> {
    if bytes.get(*pos) != Some(&b'(') {
        return Err(XmlError::BadSchema {
            message: format!("expected '(' at {} in: {src}", *pos),
        });
    }
    *pos += 1;
    let mut is_choice = false;
    let mut group_items: Vec<ChildSpec> = Vec::new();
    loop {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => {
                return Err(XmlError::UnexpectedEof {
                    context: "content model group",
                })
            }
            Some(b')') => {
                *pos += 1;
                break;
            }
            Some(b',') => {
                *pos += 1;
            }
            Some(b'|') => {
                is_choice = true;
                *pos += 1;
            }
            Some(b'(') => {
                let mut inner = Vec::new();
                parse_group(bytes, src, pos, Cardinality::One, &mut inner)?;
                // The occurrence marker for the sub-group was applied inside;
                // lift into this group's item list.
                group_items.extend(inner);
            }
            Some(_) => {
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b','
                        || b == b'|'
                        || b == b')'
                        || b == b'?'
                        || b == b'*'
                        || b == b'+'
                        || b.is_ascii_whitespace()
                    {
                        break;
                    }
                    *pos += 1;
                }
                let name = &src[start..*pos];
                if name.is_empty() {
                    return Err(XmlError::BadSchema {
                        message: format!("empty name in content model: {src}"),
                    });
                }
                let card = read_occurrence(bytes, pos);
                group_items.push(ChildSpec {
                    tag: name.to_string(),
                    card,
                    from_choice: false,
                });
            }
        }
    }
    let group_card = read_occurrence(bytes, pos);
    let effective_outer = group_card.under(outer);
    for mut item in group_items {
        item.card = item.card.under(effective_outer);
        if is_choice {
            item.from_choice = true;
            // Members of a choice are individually optional.
            item.card = match item.card {
                Cardinality::One => Cardinality::Optional,
                Cardinality::OneOrMore => Cardinality::Many,
                other => other,
            };
        }
        specs.push(item);
    }
    Ok(())
}

fn read_occurrence(bytes: &[u8], pos: &mut usize) -> Cardinality {
    match bytes.get(*pos) {
        Some(b'?') => {
            *pos += 1;
            Cardinality::Optional
        }
        Some(b'*') => {
            *pos += 1;
            Cardinality::Many
        }
        Some(b'+') => {
            *pos += 1;
            Cardinality::OneOrMore
        }
        _ => Cardinality::One,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_whitespace() {
            *pos += 1;
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn movie_schema() -> Schema {
        Schema::parse(
            r#"
            <!ELEMENT catalog (movie*)>
            <!ELEMENT movie (title, year?, genre*, director+)>
            <!ELEMENT title (#PCDATA)>
            <!ELEMENT year (#PCDATA)>
            <!ELEMENT genre (#PCDATA)>
            <!ELEMENT director (#PCDATA)>
            "#,
        )
        .unwrap()
    }

    #[test]
    fn parse_declarations() {
        let s = movie_schema();
        assert_eq!(s.len(), 6);
        assert_eq!(s.max_occurs("movie", "title"), Some(Cardinality::One));
        assert_eq!(s.max_occurs("movie", "year"), Some(Cardinality::Optional));
        assert_eq!(s.max_occurs("movie", "genre"), Some(Cardinality::Many));
        assert_eq!(
            s.max_occurs("movie", "director"),
            Some(Cardinality::OneOrMore)
        );
        assert_eq!(s.max_occurs("movie", "rating"), None);
        assert_eq!(s.max_occurs("unknown", "x"), None);
    }

    #[test]
    fn single_valuedness() {
        let s = movie_schema();
        assert!(s.is_single_valued("movie", "title"));
        assert!(s.is_single_valued("movie", "year"));
        assert!(!s.is_single_valued("movie", "genre"));
        assert!(!s.is_single_valued("movie", "director"));
        assert!(!s.is_single_valued("movie", "unheard_of"));
    }

    #[test]
    fn programmatic_declaration() {
        let mut s = Schema::new();
        s.declare(
            "person",
            &[("nm", Cardinality::One), ("tel", Cardinality::Optional)],
        );
        s.declare_text("nm");
        assert!(s.is_single_valued("person", "tel"));
        assert_eq!(s.model("nm"), Some(&ContentModel::Pcdata));
    }

    #[test]
    fn empty_and_any() {
        let s = Schema::parse("<!ELEMENT br EMPTY><!ELEMENT blob ANY>").unwrap();
        assert_eq!(s.model("br"), Some(&ContentModel::Empty));
        assert_eq!(s.model("blob"), Some(&ContentModel::Any));
    }

    #[test]
    fn mixed_content_parses() {
        let s = Schema::parse("<!ELEMENT p (#PCDATA | em | strong)*>").unwrap();
        match s.model("p") {
            Some(ContentModel::Mixed(tags)) => {
                assert_eq!(tags, &["em".to_string(), "strong".to_string()]);
            }
            other => panic!("expected mixed, got {other:?}"),
        }
        assert_eq!(s.max_occurs("p", "em"), Some(Cardinality::Many));
    }

    #[test]
    fn choice_group_members_are_optional() {
        let s = Schema::parse("<!ELEMENT media (video | audio)>").unwrap();
        assert_eq!(s.max_occurs("media", "video"), Some(Cardinality::Optional));
        assert_eq!(s.max_occurs("media", "audio"), Some(Cardinality::Optional));
    }

    #[test]
    fn starred_group_makes_members_repeatable() {
        let s = Schema::parse("<!ELEMENT log ((entry, note?))*>").unwrap();
        assert_eq!(s.max_occurs("log", "entry"), Some(Cardinality::Many));
        assert_eq!(s.max_occurs("log", "note"), Some(Cardinality::Many));
    }

    #[test]
    fn validate_accepts_conforming_document() {
        let s = movie_schema();
        let d = parse(
            "<catalog><movie><title>Jaws</title><year>1975</year>\
             <genre>Horror</genre><director>Spielberg</director></movie></catalog>",
        )
        .unwrap();
        s.validate(&d).unwrap();
    }

    #[test]
    fn validate_rejects_double_single_child() {
        let s = movie_schema();
        let d = parse(
            "<catalog><movie><title>A</title><title>B</title><director>X</director></movie></catalog>",
        )
        .unwrap();
        let e = s.validate(&d).unwrap_err();
        assert!(matches!(e, XmlError::Invalid { .. }), "{e}");
    }

    #[test]
    fn validate_rejects_missing_required_child() {
        let s = movie_schema();
        let d = parse("<catalog><movie><title>A</title></movie></catalog>").unwrap();
        // director+ is required.
        assert!(s.validate(&d).is_err());
    }

    #[test]
    fn validate_rejects_undeclared_child() {
        let s = movie_schema();
        let d = parse(
            "<catalog><movie><title>A</title><director>X</director><rating>5</rating></movie></catalog>",
        )
        .unwrap();
        assert!(s.validate(&d).is_err());
    }

    #[test]
    fn validate_rejects_text_in_element_content() {
        let s = movie_schema();
        let d = parse("<catalog>stray text</catalog>").unwrap();
        assert!(s.validate(&d).is_err());
    }

    #[test]
    fn validate_rejects_elements_inside_pcdata() {
        let s = movie_schema();
        let d = parse(
            "<catalog><movie><title><b>A</b></title><director>X</director></movie></catalog>",
        )
        .unwrap();
        assert!(s.validate(&d).is_err());
    }

    #[test]
    fn undeclared_elements_are_unconstrained() {
        let s = movie_schema();
        let d = parse("<whatever><goes/><here>text</here></whatever>").unwrap();
        s.validate(&d).unwrap();
    }

    #[test]
    fn bad_declaration_is_rejected() {
        assert!(Schema::parse("<!ELEMENT broken").is_err());
        assert!(Schema::parse("<!ATTLIST a b CDATA #IMPLIED>").is_err());
        assert!(Schema::parse("<!ELEMENT a >").is_err());
    }

    #[test]
    fn loosest_combination() {
        use Cardinality::*;
        assert_eq!(loosest(One, One), One);
        assert_eq!(loosest(One, Optional), Optional);
        assert_eq!(loosest(Optional, OneOrMore), Many);
        assert_eq!(loosest(Many, One), Many);
        assert_eq!(loosest(OneOrMore, One), OneOrMore);
    }
}
