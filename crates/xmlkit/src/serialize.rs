//! Serialization of [`XmlDoc`] trees back to XML text.

use crate::doc::{NodeId, NodeKind, XmlDoc};
use crate::escape::{escape_attr, escape_text};
use std::fmt::Write;

/// Serialize the whole document compactly (no added whitespace).
pub fn to_string(doc: &XmlDoc) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    write_node(doc, doc.root(), &mut out);
    out
}

/// Serialize the subtree rooted at `node` compactly.
pub fn node_to_string(doc: &XmlDoc, node: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, node, &mut out);
    out
}

/// Serialize the whole document with two-space indentation.
///
/// Text-only elements are kept on one line (`<nm>John</nm>`); mixed content
/// falls back to compact serialization for that element so no whitespace is
/// invented inside it.
pub fn to_pretty_string(doc: &XmlDoc) -> String {
    let mut out = String::with_capacity(doc.len() * 24);
    write_pretty(doc, doc.root(), 0, &mut out);
    out.push('\n');
    out
}

fn write_node(doc: &XmlDoc, node: NodeId, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Element { tag, attrs } => {
            out.push('<');
            out.push_str(tag);
            for a in attrs {
                let _ = write!(out, " {}=\"{}\"", a.name, escape_attr(&a.value));
            }
            let children = doc.children(node);
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for &c in children {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
}

fn write_pretty(doc: &XmlDoc, node: NodeId, depth: usize, out: &mut String) {
    const INDENT: &str = "  ";
    for _ in 0..depth {
        out.push_str(INDENT);
    }
    match doc.kind(node) {
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Element { tag, attrs } => {
            out.push('<');
            out.push_str(tag);
            for a in attrs {
                let _ = write!(out, " {}=\"{}\"", a.name, escape_attr(&a.value));
            }
            let children = doc.children(node);
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            let only_text = children.iter().all(|&c| doc.is_text(c));
            let has_text = children.iter().any(|&c| doc.is_text(c));
            if only_text {
                out.push('>');
                for &c in children {
                    if let NodeKind::Text(t) = doc.kind(c) {
                        out.push_str(&escape_text(t));
                    }
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            } else if has_text {
                // Mixed content: compact to avoid inventing whitespace.
                out.push('>');
                for &c in children {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            } else {
                out.push('>');
                out.push('\n');
                for &c in children {
                    write_pretty(doc, c, depth + 1, out);
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_roundtrip() {
        let src = "<a x=\"1\"><b>t</b><c/></a>";
        let d = parse(src).unwrap();
        assert_eq!(to_string(&d), src);
    }

    #[test]
    fn text_is_escaped_on_output() {
        let mut d = XmlDoc::new("a");
        d.add_text(d.root(), "1 < 2 & 3");
        assert_eq!(to_string(&d), "<a>1 &lt; 2 &amp; 3</a>");
    }

    #[test]
    fn attr_is_escaped_on_output() {
        let mut d = XmlDoc::new("a");
        d.set_attr(d.root(), "t", "say \"hi\" & bye");
        assert_eq!(to_string(&d), "<a t=\"say &quot;hi&quot; &amp; bye\"/>");
    }

    #[test]
    fn empty_element_self_closes() {
        let d = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&d), "<a><b/></a>");
    }

    #[test]
    fn pretty_prints_indented() {
        let d = parse("<a><b><c>x</c></b><d/></a>").unwrap();
        let pretty = to_pretty_string(&d);
        assert_eq!(pretty, "<a>\n  <b>\n    <c>x</c>\n  </b>\n  <d/>\n</a>\n");
    }

    #[test]
    fn pretty_keeps_mixed_content_compact() {
        let src = "<p>hello <b>world</b> bye</p>";
        let d = crate::parser::parse_with_options(
            src,
            crate::parser::ParseOptions {
                text: crate::parser::TextPolicy::Preserve,
            },
        )
        .unwrap();
        let pretty = to_pretty_string(&d);
        assert_eq!(pretty, "<p>hello <b>world</b> bye</p>\n");
    }

    #[test]
    fn pretty_roundtrips_through_parse() {
        let src = "<catalog><movie><title>Jaws</title><year>1975</year></movie></catalog>";
        let d = parse(src).unwrap();
        let d2 = parse(&to_pretty_string(&d)).unwrap();
        assert!(crate::eq::deep_equal(&d, &d2));
    }

    #[test]
    fn node_to_string_serializes_subtree() {
        let d = parse("<a><b>x</b></a>").unwrap();
        let b = d.first_child_with_tag(d.root(), "b").unwrap();
        assert_eq!(node_to_string(&d, b), "<b>x</b>");
    }
}
