//! The paper's Fig. 2/Fig. 3 walkthrough in full detail: integrate the two
//! John address books, inspect every possible world, see the compact
//! probabilistic tree in its annotated-XML form, and observe how the DTD
//! ("persons only have one phone number") prunes the two-phone world.
//!
//! Run with `cargo run --example address_books`.

use imprecise::datagen::addressbook::{addressbook_schema, fig2_sources};
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::addressbook_oracle;
use imprecise::pxml::to_annotated_xml;
use imprecise::xml::{to_pretty_string, to_string};

fn main() {
    let (source_a, source_b) = fig2_sources();
    println!("source 1: {}", to_string(&source_a));
    println!("source 2: {}\n", to_string(&source_b));

    let oracle = addressbook_oracle();
    let options = IntegrationOptions::default();

    // --- With the DTD: the paper's Fig. 2 — three possible worlds. ---
    let schema = addressbook_schema();
    let with_dtd = integrate_xml(&source_a, &source_b, &oracle, Some(&schema), &options)
        .expect("integration succeeds");
    println!("== with DTD (person has at most one tel) ==");
    println!(
        "compact representation: {}\n",
        with_dtd.doc.node_breakdown()
    );
    println!("annotated probabilistic XML:");
    println!("{}", to_pretty_string(&to_annotated_xml(&with_dtd.doc)));
    println!("the {} possible worlds:", with_dtd.doc.world_count());
    for (i, world) in with_dtd
        .doc
        .world_distribution(100)
        .expect("small document")
        .iter()
        .enumerate()
    {
        println!(
            "  world {} (p = {:.2}): {}",
            i + 1,
            world.prob,
            to_string(&world.doc)
        );
    }

    // --- Without the DTD: John may simply have both numbers. ---
    let without_dtd =
        integrate_xml(&source_a, &source_b, &oracle, None, &options).expect("integration succeeds");
    println!("\n== without DTD ==");
    println!("the {} possible worlds:", without_dtd.doc.world_count());
    for (i, world) in without_dtd
        .doc
        .world_distribution(100)
        .expect("small document")
        .iter()
        .enumerate()
    {
        println!(
            "  world {} (p = {:.2}): {}",
            i + 1,
            world.prob,
            to_string(&world.doc)
        );
    }
    println!(
        "\nThe DTD is what rejects the \"John has two phone numbers\" possibility —\n\
         exactly the paper's §II example."
    );
}
