//! The information cycle of the paper's Fig. 1, closed: query → user
//! feedback → fewer possible worlds → better answers. (The 2008 demo
//! described this loop but had not implemented it; this reproduction
//! does.)
//!
//! Run with `cargo run --example feedback_loop`.

use imprecise::oracle::presets::addressbook_oracle;
use imprecise::Engine;

fn main() {
    let engine = Engine::builder()
        .oracle(addressbook_oracle())
        .schema_text(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .expect("schema parses")
        .build();
    // Three sources disagreeing about two people.
    let s1 = engine
        .load_xml(
            "s1",
            "<addressbook>\
               <person><nm>John</nm><tel>1111</tel></person>\
               <person><nm>Mary</nm><tel>5555</tel></person>\
             </addressbook>",
        )
        .expect("loads");
    let s2 = engine
        .load_xml(
            "s2",
            "<addressbook>\
               <person><nm>John</nm><tel>2222</tel></person>\
               <person><nm>Mary</nm><tel>5555</tel></person>\
             </addressbook>",
        )
        .expect("loads");
    let s3 = engine
        .load_xml(
            "s3",
            "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
        )
        .expect("loads");

    let (merged, _) = engine.integrate(&s1, &s2, "merged").expect("integrates");
    // The third source arrives: publish a new version of "merged".
    let (merged, _) = engine
        .integrate(&merged, &s3, "merged")
        .expect("incremental integration");
    let stats = engine.stats(&merged).expect("exists");
    println!(
        "after integrating three sources: {} possible worlds, {} nodes",
        stats.worlds,
        stats.breakdown.total()
    );

    // One parse serves the whole review loop.
    let tel = engine.prepare("//person/tel").expect("query parses");
    println!("\nquery {} before feedback:", tel.text());
    println!(
        "{}",
        tel.run(&engine.snapshot(&merged).expect("exists"))
            .expect("runs")
    );

    // The user reviews the ranked answers one by one.
    for (value, correct) in [("2222", true), ("1111", false)] {
        let verdict = if correct { "correct" } else { "wrong" };
        match engine.feedback(&merged, &tel, value, correct) {
            Ok(report) => {
                println!(
                    "feedback: {value} is {verdict} → worlds {} → {}  (method {:?})",
                    report.worlds_before, report.worlds_after, report.method
                );
            }
            Err(e) => println!("feedback: {value} is {verdict} → no effect needed ({e})"),
        }
    }

    println!("\nquery {} after feedback:", tel.text());
    println!(
        "{}",
        tel.run(&engine.snapshot(&merged).expect("exists"))
            .expect("runs")
    );
    let stats = engine.stats(&merged).expect("exists");
    println!(
        "final state: {} worlds, certain = {} — \"user feedback … in a sense\n\
         continues the semantic integration process incrementally\" (§VII)",
        stats.worlds, stats.certain
    );
}
