//! The information cycle of the paper's Fig. 1, closed: query → user
//! feedback → fewer possible worlds → better answers. (The 2008 demo
//! described this loop but had not implemented it; this reproduction
//! does.)
//!
//! Run with `cargo run --example feedback_loop`.

use imprecise::oracle::presets::addressbook_oracle;
use imprecise::Session;

fn main() {
    let mut session = Session::new();
    session.set_oracle(addressbook_oracle());
    session
        .load_schema(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .expect("schema parses");
    // Three sources disagreeing about two people.
    session
        .load_xml(
            "s1",
            "<addressbook>\
               <person><nm>John</nm><tel>1111</tel></person>\
               <person><nm>Mary</nm><tel>5555</tel></person>\
             </addressbook>",
        )
        .expect("loads");
    session
        .load_xml(
            "s2",
            "<addressbook>\
               <person><nm>John</nm><tel>2222</tel></person>\
               <person><nm>Mary</nm><tel>5555</tel></person>\
             </addressbook>",
        )
        .expect("loads");
    session
        .load_xml(
            "s3",
            "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
        )
        .expect("loads");

    session.integrate("s1", "s2", "merged").expect("integrates");
    session
        .integrate("merged", "s3", "merged")
        .expect("incremental integration");
    let stats = session.stats("merged").expect("exists");
    println!(
        "after integrating three sources: {} possible worlds, {} nodes",
        stats.worlds,
        stats.breakdown.total()
    );

    println!("\nquery //person/tel before feedback:");
    println!("{}", session.query("merged", "//person/tel").expect("runs"));

    // The user reviews the ranked answers one by one.
    for (value, correct) in [("2222", true), ("1111", false)] {
        let verdict = if correct { "correct" } else { "wrong" };
        match session.feedback("merged", "//person/tel", value, correct) {
            Ok(report) => {
                println!(
                    "feedback: {value} is {verdict} → worlds {} → {}  (method {:?})",
                    report.worlds_before, report.worlds_after, report.method
                );
            }
            Err(e) => println!("feedback: {value} is {verdict} → no effect needed ({e})"),
        }
    }

    println!("\nquery //person/tel after feedback:");
    println!("{}", session.query("merged", "//person/tel").expect("runs"));
    let stats = session.stats("merged").expect("exists");
    println!(
        "final state: {} worlds, certain = {} — \"user feedback … in a sense\n\
         continues the semantic integration process incrementally\" (§VII)",
        stats.worlds, stats.certain
    );
}
