//! Integrating the movie catalogs of §V: two sources with different
//! conventions (IMDB vs MPEG-7 style), franchise confusion, and the
//! knowledge rules that keep the possibility space tame.
//!
//! Run with `cargo run --example movie_integration`.

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::TableIRuleSet;
use imprecise::xml::to_pretty_string;

fn main() {
    // A small confusing workload: 6 MPEG-7 movies vs 6 IMDB franchise
    // entries (sequels and TV variants).
    let scenario = scenarios::fig5(6);
    println!("MPEG-7 source:\n{}", to_pretty_string(&scenario.mpeg7));
    println!("IMDB source:\n{}", to_pretty_string(&scenario.imdb));

    println!(
        "{:<36} {:>10} {:>12} {:>12} {:>10}",
        "effective rules", "undecided", "nodes", "worlds", "decisions"
    );
    for rule_set in TableIRuleSet::ALL {
        let oracle = rule_set.oracle();
        let result = integrate_xml(
            &scenario.mpeg7,
            &scenario.imdb,
            &oracle,
            Some(&scenario.schema),
            &IntegrationOptions::default(),
        )
        .expect("integration succeeds");
        let decided: usize = result.stats.rule_decisions.values().sum();
        println!(
            "{:<36} {:>10} {:>12.4e} {:>12.4e} {:>10}",
            rule_set.label(),
            result.stats.judged_possible,
            result.doc.unfactored_node_count(),
            result.doc.world_count_f64(),
            decided,
        );
    }

    // Show what the full rule set decided, per rule.
    let full = TableIRuleSet::GenreTitleYear.oracle();
    let result = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &full,
        Some(&scenario.schema),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    println!("\nabsolute decisions by rule (full rule set):");
    for (rule, count) in &result.stats.rule_decisions {
        println!("  {rule:<24} {count}");
    }
    println!(
        "\n\"In theory, data sources can be integrated fully automatically using our\n\
         method\" — the rules just keep the number of possibilities manageable (§V)."
    );
}
