//! Possibility reduction end to end: configure the Oracle from a textual
//! rule file, integrate the confusing §VI movie catalog, prune the result
//! at increasing thresholds, and watch the paper's warning play out —
//! *"reduction should not be pushed too far, because eliminating valid
//! possibilities reduces the quality of query answers"* (§V).
//!
//! Also exports the pruned tree as GraphViz for the Fig. 2-style picture:
//!
//! ```text
//! cargo run --example possibility_reduction -- --dot | dot -Tsvg > db.svg
//! ```

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::parse_rules;
use imprecise::pxml::to_dot;
use imprecise::quality::evaluate;
use imprecise::query::{eval_px, parse_query};

/// The §VI configuration written as the rule file a user would keep next
/// to their data (no year rule — "the II may be a typing mistake").
const RULES: &str = "\
rule deep-equal
rule exact-text genre                              # no typos in genres
rule similarity movie title >= 0.55 using title    # the paper's title rule
prior similarity movie title range 0.05 0.95 using title
";

fn main() {
    let dot_mode = std::env::args().any(|a| a == "--dot");
    let scenario = scenarios::query_db();
    let oracle = parse_rules(RULES).expect("rule file parses");
    let result = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &oracle,
        Some(&scenario.schema),
        &IntegrationOptions {
            source_weights: (0.8, 0.2), // the MPEG-7 source is curated
            ..IntegrationOptions::default()
        },
    )
    .expect("integration succeeds");

    let john = parse_query("//movie[some $d in .//director satisfies contains($d,\"John\")]/title")
        .expect("query parses");
    let truth = ["Die Hard: With a Vengeance", "Mission: Impossible II"];

    if dot_mode {
        // Print the heavily pruned tree (small enough to render readably).
        let mut doc = result.doc.clone();
        doc.prune_below(0.3);
        print!("{}", to_dot(&doc));
        return;
    }

    println!("rules in effect:\n{RULES}");
    println!(
        "integrated: {} worlds, {} nodes\n",
        result.doc.world_count_f64(),
        result.doc.reachable_count()
    );
    println!(
        "{:>5} {:>7} {:>10} {:>7} {:>7} {:>7}   answers (p >= 1%)",
        "eps", "nodes", "worlds", "P", "R", "F"
    );
    for eps in [0.0, 0.05, 0.1, 0.2, 0.3, 0.6] {
        let mut doc = result.doc.clone();
        doc.prune_below(eps);
        let answers = eval_px(&doc, &john).expect("query evaluates");
        let q = evaluate(&answers, &truth);
        let listing: Vec<String> = answers
            .items
            .iter()
            .filter(|a| a.probability >= 0.01)
            .map(|a| format!("{} ({:.0}%)", a.value, a.probability * 100.0))
            .collect();
        println!(
            "{:>5.2} {:>7} {:>10.3e} {:>7.3} {:>7.3} {:>7.3}   {}",
            eps,
            doc.reachable_count(),
            doc.world_count_f64(),
            q.precision,
            q.recall,
            q.f_measure,
            listing.join(", ")
        );
    }
    println!(
        "\nMild pruning discards the unlikely typo-merge (precision up);\n\
         the dip on the way shows a valid possibility going before the\n\
         noise does — reduction must not be pushed too far."
    );
}
