//! The §VI demonstration: querying an integration performed under
//! confusing conditions still gives perfectly usable, likelihood-ranked
//! answers.
//!
//! Run with `cargo run --example query_ranking`.

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use imprecise::quality::evaluate;
use imprecise::query::{eval_px, parse_query, QueryPlan};

fn main() {
    let scenario = scenarios::query_db();
    // Confusing conditions: no year rule, so "the 'II' may be a typing
    // mistake" stays possible; the curated MPEG-7 source is trusted 4:1.
    let oracle = movie_oracle(MovieOracleConfig {
        genre_rule: true,
        title_rule: true,
        year_rule: false,
        graded_prior: true,
        ..MovieOracleConfig::default()
    });
    let options = IntegrationOptions {
        source_weights: (0.8, 0.2),
        ..IntegrationOptions::default()
    };
    let db = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &oracle,
        Some(&scenario.schema),
        &options,
    )
    .expect("integration succeeds");
    println!(
        "integrated movie database: {} possible worlds in {} nodes\n",
        db.doc.world_count_f64(),
        db.doc.reachable_count()
    );

    for (query_text, truth) in [
        ("//movie[.//genre=\"Horror\"]/title", vec!["Jaws", "Jaws 2"]),
        (
            "//movie[some $d in .//director satisfies contains($d,\"John\")]/title",
            vec!["Die Hard: With a Vengeance", "Mission: Impossible II"],
        ),
    ] {
        println!("query: {query_text}");
        let query = parse_query(query_text).expect("query parses");
        let answers = eval_px(&db.doc, &query).expect("query evaluates");
        print!("{answers}");
        let quality = evaluate(&answers, &truth);
        println!(
            "quality: precision {:.3}, recall {:.3}, F {:.3}\n",
            quality.precision, quality.recall, quality.f_measure
        );
    }
    // The planned, streaming pipeline: compile once, push the
    // good-is-good-enough threshold down into execution, and consume
    // answers lazily (each probability is computed on demand; candidates
    // whose probability *bound* stays below the threshold never reach
    // probability computation at all).
    let plan = QueryPlan::parse("//movie[.//genre=\"Horror\"]/title")
        .expect("query parses")
        .with_min_probability(0.5);
    println!("{plan}\n");
    let mut stream = plan.execute(&db.doc).expect("plan executes");
    println!("streamed answers at threshold 0.5:");
    for answer in stream.by_ref() {
        println!("  {:>5.1}% {}", answer.probability * 100.0, answer.value);
    }
    println!(
        "  ({} candidate(s) pruned by probability bounds alone)\n",
        stream.pruned_by_bound()
    );

    println!(
        "\"Even though the integrated document contains thousands of possible\n\
         worlds, the ranked answer contains only\" the plausible candidates (§VI)."
    );
}
