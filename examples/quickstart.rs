//! Quickstart: the paper's running example end to end in ten lines of
//! API — two address books both knowing a "John" with conflicting phone
//! numbers are integrated near-automatically; the conflict survives as
//! ranked possibilities; user feedback resolves it.
//!
//! Run with `cargo run --example quickstart`.

use imprecise::oracle::presets::addressbook_oracle;
use imprecise::Session;

fn main() {
    let mut session = Session::new();
    session.set_oracle(addressbook_oracle());
    session
        .load_schema(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .expect("schema parses");

    session
        .load_xml(
            "phone-of-alice",
            "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>",
        )
        .expect("source a loads");
    session
        .load_xml(
            "phone-of-bob",
            "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
        )
        .expect("source b loads");

    let stats = session
        .integrate("phone-of-alice", "phone-of-bob", "merged")
        .expect("integration succeeds");
    println!(
        "integrated with {} undecided pair(s)\n",
        stats.judged_possible
    );

    let doc_stats = session.stats("merged").expect("document exists");
    println!(
        "the merged address book compactly stores {} possible worlds in {} nodes\n",
        doc_stats.worlds,
        doc_stats.breakdown.total()
    );

    println!("What is John's phone number?  //person/tel");
    let answers = session.query("merged", "//person/tel").expect("query runs");
    println!("{answers}");

    println!("User feedback: 1111 is correct.");
    session
        .feedback("merged", "//person/tel", "1111", true)
        .expect("feedback applies");
    println!("\nAfter feedback:");
    let answers = session.query("merged", "//person/tel").expect("query runs");
    println!("{answers}");
    println!(
        "remaining worlds: {}",
        session.stats("merged").expect("document exists").worlds
    );
}
