//! Quickstart: the paper's running example end to end in ten lines of
//! API — two address books both knowing a "John" with conflicting phone
//! numbers are integrated near-automatically; the conflict survives as
//! ranked possibilities; user feedback resolves it.
//!
//! Run with `cargo run --example quickstart`.

use imprecise::oracle::presets::addressbook_oracle;
use imprecise::Engine;

fn main() {
    let engine = Engine::builder()
        .oracle(addressbook_oracle())
        .schema_text(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .expect("schema parses")
        .build();

    let alice = engine
        .load_xml(
            "phone-of-alice",
            "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>",
        )
        .expect("source a loads");
    let bob = engine
        .load_xml(
            "phone-of-bob",
            "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
        )
        .expect("source b loads");

    let (merged, stats) = engine
        .integrate(&alice, &bob, "merged")
        .expect("integration succeeds");
    println!(
        "integrated with {} undecided pair(s)\n",
        stats.judged_possible
    );

    let doc_stats = engine.stats(&merged).expect("document exists");
    println!(
        "the merged address book compactly stores {} possible worlds in {} nodes\n",
        doc_stats.worlds,
        doc_stats.breakdown.total()
    );

    // Parse the question once; run it against every version.
    let tel = engine.prepare("//person/tel").expect("query parses");
    println!("What is John's phone number?  {}", tel.text());
    let snapshot = engine.snapshot(&merged).expect("document exists");
    println!("{}", tel.run(&snapshot).expect("query runs"));

    println!("User feedback: 1111 is correct.");
    engine
        .feedback(&merged, &tel, "1111", true)
        .expect("feedback applies");
    println!("\nAfter feedback:");
    let snapshot = engine.snapshot(&merged).expect("document exists");
    println!("{}", tel.run(&snapshot).expect("query runs"));
    println!("remaining worlds: {}", snapshot.stats().worlds);
}
