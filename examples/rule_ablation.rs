//! How much does each individual rule contribute? An ablation over the
//! eight on/off combinations of the three domain rules on a confusing
//! franchise workload — extending Table I from five rows to the full
//! lattice.
//!
//! Run with `cargo run --example rule_ablation` (release recommended).

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};

fn main() {
    let scenario = scenarios::fig5(9);
    println!(
        "workload: {} MPEG-7 movies x {} IMDB movies (franchise confusion)\n",
        scenario.info.mpeg7_movies, scenario.info.imdb_movies
    );
    println!(
        "{:>6} {:>6} {:>5} | {:>10} {:>14} {:>14}",
        "genre", "title", "year", "undecided", "nodes", "worlds"
    );
    for mask in 0u8..8 {
        let config = MovieOracleConfig {
            genre_rule: mask & 1 != 0,
            title_rule: mask & 2 != 0,
            year_rule: mask & 4 != 0,
            graded_prior: false,
            ..MovieOracleConfig::default()
        };
        let oracle = movie_oracle(config);
        let flags = format!(
            "{:>6} {:>6} {:>5}",
            if config.genre_rule { "on" } else { "-" },
            if config.title_rule { "on" } else { "-" },
            if config.year_rule { "on" } else { "-" },
        );
        match integrate_xml(
            &scenario.mpeg7,
            &scenario.imdb,
            &oracle,
            Some(&scenario.schema),
            &IntegrationOptions::default(),
        ) {
            Ok(result) => println!(
                "{flags} | {:>10} {:>14.4e} {:>14.4e}",
                result.stats.judged_possible,
                result.doc.unfactored_node_count(),
                result.doc.world_count_f64(),
            ),
            // With too few rules the possibility space genuinely explodes —
            // the engine refuses past its memory guard, which *is* the
            // datapoint ("too little semantical knowledge", §V).
            Err(imprecise::integrate::IntegrateError::OutputTooLarge { cap }) => println!(
                "{flags} | {:>10} {:>14} {:>14}",
                "(many)",
                format!("> {cap:.0e}"),
                "exploded"
            ),
            Err(e) => panic!("integration failed: {e}"),
        }
    }
    println!(
        "\nReading: with no value-based rule the possibility space explodes past the\n\
         engine's memory guard (§V's 'too little semantical knowledge'). Any rule\n\
         that disconnects the candidate graph tames it — here the year rule bites\n\
         hardest (the workload's TV remakes share titles but not years), and the\n\
         combination reproduces Table I's monotone collapse."
    );
}
