//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to a crate registry, so the real
//! `criterion` cannot be vendored. This shim keeps the same bench authoring
//! API — `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` — and implements a
//! simple but honest wall-clock harness:
//!
//! * under `cargo bench` (cargo passes `--bench`) every benchmark is warmed
//!   up and then measured over multiple samples; median, min and max
//!   per-iteration times are printed in a criterion-like format;
//! * under `cargo test` (no `--bench` argument) each benchmark body runs
//!   exactly once, so benches stay compile- and run-checked without costing
//!   test time;
//! * when `IMPRECISE_BENCH_JSON` names a file, one JSON line per benchmark
//!   (`{"id": …, "median_ns": …, …}`) is appended for baseline tracking.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Measurement settings plus collected results.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion {
            test_mode,
            sample_size: 30,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Parse harness arguments (accepted for API compatibility; only the
    /// presence of `--bench` matters to the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            let mut b = Bencher {
                mode: Mode::Once,
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test-mode {id}: ran once");
            return;
        }
        // Warm-up and calibration: find an iteration count that takes
        // roughly one sample's worth of time.
        let mut calibrate = Bencher {
            mode: Mode::Time,
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let mut iters: u64 = 1;
        loop {
            calibrate.iters = iters;
            f(&mut calibrate);
            if calibrate.elapsed >= Duration::from_millis(2) || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let per_iter = calibrate.elapsed.as_secs_f64() / calibrate.iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        let mut b = Bencher {
            mode: Mode::Time,
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        for _ in 0..sample_size {
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        record_json(id, median, min, max, sample_size, iters_per_sample);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn record_json(id: &str, median: f64, min: f64, max: f64, samples: usize, iters: u64) {
    let Ok(path) = std::env::var("IMPRECISE_BENCH_JSON") else {
        return;
    };
    let line = format!(
        "{{\"id\":\"{}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{samples},\"iters_per_sample\":{iters}}}\n",
        id.replace('\\', "\\\\").replace('"', "\\\""),
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Set the target measurement time for subsequent benchmarks.
    /// Accepted for API compatibility; the shim keeps its own budget.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group.
    pub fn finish(self) {}
}

enum Mode {
    Once,
    Time,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it as many times as the harness asks.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Once => {
                std::hint::black_box(routine());
            }
            Mode::Time => {
                let start = Instant::now();
                for _ in 0..self.iters {
                    std::hint::black_box(routine());
                }
                self.elapsed = start.elapsed();
            }
        }
    }
}

/// A benchmark identifier with a parameter, rendered as `name/param`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier for `name` at parameter `param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), param),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Re-export so `criterion::black_box` callers work; benches in this
/// workspace use `std::hint::black_box` directly.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 3,
            measurement_time: Duration::from_millis(3),
        };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u64;
        group.sample_size(2).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
            measurement_time: Duration::from_millis(100),
        };
        let mut runs = 0u64;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("fig5", 12).to_string(), "fig5/12");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
