//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to a crate registry, so the real
//! `proptest` cannot be vendored. This shim keeps the same testing model —
//! strategies generate random inputs, the `proptest!` macro runs each test
//! over many generated cases, `prop_assert*` report failures and
//! `prop_assume!` rejects uninteresting cases — with two simplifications:
//!
//! * no shrinking: a failing case is reported with its case number and the
//!   `Debug` rendering of its inputs;
//! * deterministic seeding: the stream is derived from the test's name and
//!   the case number (override the base seed with `PROPTEST_SEED`), so a
//!   failure reproduces exactly on re-run.
//!
//! Only the strategy combinators the workspace needs are provided:
//! integer ranges, tuples, `prop_map`, `option::of`, `collection::vec`,
//! `bool::ANY`, and `Just`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** stream used to drive generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Stream for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = base_seed();
        for b in test_name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
        }
        seed = seed.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty range");
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a decimal u64, got {s:?}")),
        Err(_) => 0x5EED_0F1A75,
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1) as u64;
                if span == 0 {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Strategy for `Option<T>`: `None` in ~1/4 of cases, as the real
    /// `proptest::option::of` defaults to weighting `Some` 3:1.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(value)` most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec()`].
    pub trait SizeRange {
        /// Sample a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` of values from `element` with length in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Mirrors `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.coin()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case violated an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// An assumption failure.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before the test errors.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case.wrapping_add(rejects.wrapping_mul(0x9E37)),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => case += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({rejects})",
                                stringify!($name)
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case} (set PROPTEST_SEED to vary):\n{msg}\ninputs:\n{inputs}",
                            stringify!($name),
                            case = case,
                            msg = msg,
                            inputs = __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u8..10, pair in (0usize..4, 1u32..=3)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4);
            prop_assert!((1..=3).contains(&pair.1));
        }

        #[test]
        fn vec_and_option_and_map(
            v in crate::collection::vec((0u8..5).prop_map(|n| n * 2), 0..4),
            o in crate::option::of(0u8..3),
            b in crate::bool::ANY,
        ) {
            prop_assert!(v.len() < 4);
            for e in &v {
                prop_assert_eq!(e % 2, 0);
            }
            if let Some(val) = o {
                prop_assert!(val < 3);
            }
            // Rejected cases re-draw instead of counting toward the total.
            prop_assume!(b || v.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_bodies_panic(x in 0u8..1) {
            prop_assert!(x > 0, "x is always 0 here");
        }
    }

    #[test]
    fn same_case_reproduces() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
