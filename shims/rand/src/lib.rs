//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to a crate registry, so the real
//! `rand` cannot be vendored. This shim implements the exact API surface
//! the workspace needs — `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer ranges, `Rng::gen_bool`, and `seq::SliceRandom::shuffle` —
//! backed by the xoshiro256** generator seeded through SplitMix64.
//!
//! The streams are deterministic for a given seed (which is all the
//! workspace relies on) but intentionally make no compatibility claim
//! with the real `rand` crate's value streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // wrapping arithmetic: negative signed bounds sign-extend
                // to huge u128s, but the low 64 bits of the difference are
                // still the true span (two's complement).
                let span = (end as u128)
                    .wrapping_sub(start as u128)
                    .wrapping_add(1) as u64;
                if span == 0 {
                    // Full u64 domain.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, as the real implementation does.
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1usize..=2);
            assert!((1..=2).contains(&w));
        }
    }

    #[test]
    fn signed_ranges_with_negative_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v), "got {v}");
            let w = rng.gen_range(-10i64..-1);
            assert!((-10..-1).contains(&w), "got {w}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
