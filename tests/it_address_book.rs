//! End-to-end reproduction of the paper's §II example (Fig. 2): the
//! address-book integration, checked through the public façade.

use imprecise::datagen::addressbook::{
    addressbook_schema, addressbook_to_xml, fig2_sources, random_addressbook_pair,
};
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::addressbook_oracle;
use imprecise::query::{eval_px, eval_px_naive, parse_query};
use imprecise::xml::to_string;

#[test]
fn fig2_reproduces_the_three_worlds() {
    let (a, b) = fig2_sources();
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    result.doc.validate().expect("valid px document");
    assert_eq!(result.doc.world_count(), 3);

    let dist = result.doc.world_distribution(100).expect("small doc");
    // The paper's three possible worlds, with the two-person reading most
    // probable (0.5) and the one-person readings at 0.25 each.
    assert!((dist[0].prob - 0.5).abs() < 1e-9);
    assert_eq!(to_string(&dist[0].doc).matches("<person>").count(), 2);
    for w in &dist[1..] {
        assert!((w.prob - 0.25).abs() < 1e-9);
        assert_eq!(to_string(&w.doc).matches("<person>").count(), 1);
    }
}

#[test]
fn fig2_queries_rank_phone_numbers() {
    let (a, b) = fig2_sources();
    let result = integrate_xml(
        &a,
        &b,
        &addressbook_oracle(),
        Some(&addressbook_schema()),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    let q = parse_query("//person/tel").expect("parses");
    let answers = eval_px(&result.doc, &q).expect("evaluates");
    // Both numbers appear with probability 0.25 (their one-person world)
    // + 0.5 (the two-person world) = 0.75.
    assert!((answers.probability_of("1111") - 0.75).abs() < 1e-9);
    assert!((answers.probability_of("2222") - 0.75).abs() < 1e-9);
    // The exact evaluator agrees with the possible-worlds definition.
    let naive = eval_px_naive(&result.doc, &q, 1000).expect("few worlds");
    for item in &naive.items {
        assert!((answers.probability_of(&item.value) - item.probability).abs() < 1e-9);
    }
}

#[test]
fn larger_address_books_stay_manageable_and_correct() {
    // The seed is calibrated to the workspace's deterministic `rand` shim
    // stream (see shims/README.md): it yields a workload whose undecided
    // pairs stay far below the 144 theoretical pairs.
    let (pa, pb) = random_addressbook_pair(2, 12, 5, 0.6);
    let a = addressbook_to_xml(&pa);
    let b = addressbook_to_xml(&pb);
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    let result = integrate_xml(
        &a,
        &b,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    result.doc.validate().expect("valid px document");
    // Shared persons with equal phones merge certainly; with conflicting
    // phones they stay undecided; coincidental same-name persons across
    // sources also stay undecided. Uncertainty remains far below the 144
    // theoretical pairs.
    assert!(result.stats.judged_possible > 0);
    assert!(result.stats.judged_possible < 20);
    assert!(result.stats.judged_nonmatch > 50);
    // Every name value is possible, none impossible; names of unmatched
    // persons are certain, names involved in case-variant merges ("Alice A"
    // vs "Alice a") keep at least the no-match + own-spelling mass.
    let q = parse_query("//person/nm").expect("parses");
    let answers = eval_px(&result.doc, &q).expect("evaluates");
    assert!(!answers.is_empty());
    let certain = answers
        .items
        .iter()
        .filter(|i| (i.probability - 1.0).abs() < 1e-9)
        .count();
    assert!(certain > 0, "most names are unambiguous");
    for item in &answers.items {
        assert!(item.probability > 0.25, "{item:?}");
        assert!(item.probability <= 1.0 + 1e-12, "{item:?}");
    }
}

#[test]
fn every_world_of_the_integration_validates_against_the_dtd() {
    let (a, b) = fig2_sources();
    let schema = addressbook_schema();
    let result = integrate_xml(
        &a,
        &b,
        &addressbook_oracle(),
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    for world in result.doc.worlds(100).expect("small doc") {
        schema
            .validate(&world.doc)
            .expect("world conforms to the DTD");
    }
}

#[test]
fn without_schema_some_world_violates_the_dtd() {
    // The same integration without schema knowledge produces the
    // two-phone world, which the DTD would reject — the paper's point.
    let (a, b) = fig2_sources();
    let schema = addressbook_schema();
    let result = integrate_xml(
        &a,
        &b,
        &addressbook_oracle(),
        None,
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    let violations = result
        .doc
        .worlds(100)
        .expect("small doc")
        .iter()
        .filter(|w| schema.validate(&w.doc).is_err())
        .count();
    assert!(violations > 0);
}
