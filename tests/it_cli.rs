//! End-to-end tests of the `imprecise` command-line binary: the full
//! integrate → stats → query → prune → feedback cycle over real files,
//! exactly as a downstream user would drive it.

use std::path::PathBuf;
use std::process::{Command, Output};

struct Workdir {
    dir: PathBuf,
}

impl Workdir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("imprecise-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create workdir");
        Workdir { dir }
    }

    fn write(&self, name: &str, contents: &str) -> PathBuf {
        let path = self.dir.join(name);
        std::fs::write(&path, contents).expect("write fixture");
        path
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Workdir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn imprecise(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_imprecise"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const SOURCE_A: &str = "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>";
const SOURCE_B: &str = "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>";
const DTD: &str = "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
                   <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>";

/// Run the integrate step of the paper's Fig. 2 scenario in `w`.
fn integrate_fig2(w: &Workdir) -> PathBuf {
    let a = w.write("a.xml", SOURCE_A);
    let b = w.write("b.xml", SOURCE_B);
    let dtd = w.write("ab.dtd", DTD);
    let merged = w.path("merged.xml");
    let out = imprecise(&[
        "integrate",
        "--out",
        merged.to_str().unwrap(),
        "--rules",
        "addressbook",
        "--dtd",
        dtd.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "integrate failed: {}", stderr(&out));
    assert!(
        stderr(&out).contains("3 possible worlds"),
        "{}",
        stderr(&out)
    );
    merged
}

#[test]
fn integrate_then_query_reproduces_fig2() {
    let w = Workdir::new("fig2");
    let merged = integrate_fig2(&w);
    let out = imprecise(&["query", merged.to_str().unwrap(), "//person/tel"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("75.0% 1111"), "{text}");
    assert!(text.contains("75.0% 2222"), "{text}");
}

#[test]
fn query_threshold_fast_path_filters_answers() {
    let w = Workdir::new("threshold");
    let merged = integrate_fig2(&w);
    // Both tels sit at 75%: a 0.5 threshold keeps them…
    let out = imprecise(&[
        "query",
        merged.to_str().unwrap(),
        "//person/tel",
        "--threshold",
        "0.5",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("75.0% 1111"), "{text}");
    assert!(text.contains("75.0% 2222"), "{text}");
    // …and a 0.9 threshold prunes both before probability computation.
    let out = imprecise(&[
        "query",
        merged.to_str().unwrap(),
        "//person/tel",
        "--threshold",
        "0.9",
    ]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), "", "no answer reaches 90%");
}

#[test]
fn explain_prints_the_compiled_plan() {
    let out = imprecise(&["explain", "//person[nm=\"John\"]/tel"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(
        text.contains("plan for //person[./nm=\"John\"]/tel"),
        "{text}"
    );
    assert!(text.contains("SubtreeScan(person)"), "{text}");
    assert!(text.contains("ValueScan"), "{text}");
    assert!(text.contains("ChildScan(tel)"), "{text}");
    assert!(text.contains("Amalgamate"), "{text}");

    let out = imprecise(&["explain", "//person/tel", "--threshold", "0.5"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("threshold: 0.5"), "{}", stdout(&out));

    // A malformed query reports a parse error and exits non-zero.
    let out = imprecise(&["explain", "person["]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error"), "{}", stderr(&out));
}

#[test]
fn stats_and_worlds_describe_the_database() {
    let w = Workdir::new("stats");
    let merged = integrate_fig2(&w);
    let out = imprecise(&["stats", merged.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("worlds:               3"), "{text}");
    assert!(text.contains("certain:              false"), "{text}");

    let out = imprecise(&["worlds", merged.to_str().unwrap(), "--limit", "10"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("3 possible worlds"), "{text}");
    // All three Fig. 2 worlds materialise.
    assert_eq!(text.matches("-- world").count(), 3, "{text}");
}

#[test]
fn feedback_conditions_and_roundtrips() {
    let w = Workdir::new("feedback");
    let merged = integrate_fig2(&w);
    let conditioned = w.path("conditioned.xml");
    let out = imprecise(&[
        "feedback",
        merged.to_str().unwrap(),
        "--query",
        "//person/tel",
        "--value",
        "2222",
        "--verdict",
        "incorrect",
        "--out",
        conditioned.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("worlds 3 -> 1"), "{}", stderr(&out));
    // The conditioned file is a valid input again.
    let out = imprecise(&["query", conditioned.to_str().unwrap(), "//person/tel"]);
    let text = stdout(&out);
    assert!(text.contains("100.0% 1111"), "{text}");
    assert!(!text.contains("2222"), "{text}");
}

#[test]
fn prune_shrinks_the_database() {
    let w = Workdir::new("prune");
    let merged = integrate_fig2(&w);
    let pruned = w.path("pruned.xml");
    let out = imprecise(&[
        "prune",
        merged.to_str().unwrap(),
        "--epsilon",
        "0.6",
        "--out",
        pruned.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = imprecise(&["stats", pruned.to_str().unwrap()]);
    assert!(
        stdout(&out).contains("certain:              true"),
        "{}",
        stdout(&out)
    );
}

/// An n-movie confusable catalog: no oracle rule separates the entries,
/// so every cross pair stays undecided (one big component).
fn confusable_catalog(src: usize, n: usize) -> String {
    let mut s = String::from("<catalog>");
    for i in 0..n {
        s.push_str(&format!(
            "<movie><title>M{src}{i}</title><year>19{i}0</year></movie>"
        ));
    }
    s.push_str("</catalog>");
    s
}

#[test]
fn integrate_budget_truncates_and_reports_discarded_mass() {
    let w = Workdir::new("budget");
    let a = w.write("a.xml", &confusable_catalog(1, 4));
    let b = w.write("b.xml", &confusable_catalog(2, 4));
    let merged = w.path("merged.xml");
    // 4×4 all-undecided → 209 matchings; a budget of 50 truncates.
    let out = imprecise(&[
        "integrate",
        "--out",
        merged.to_str().unwrap(),
        "--budget",
        "50",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stderr(&out);
    assert!(text.contains("budget:"), "{text}");
    assert!(text.contains("discarded mass"), "{text}");
    assert!(text.contains("/catalog/movie"), "{text}");
    // The truncated result is still a valid probabilistic database.
    let out = imprecise(&["stats", merged.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("certain:              false"));

    // The same scenario under --strict fails with the component's path.
    let out = imprecise(&[
        "integrate",
        "--out",
        merged.to_str().unwrap(),
        "--budget",
        "50",
        "--strict",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("/catalog/movie"), "{}", stderr(&out));
}

#[test]
fn integrate_folds_more_than_two_sources() {
    let w = Workdir::new("nfold");
    let a = w.write("a.xml", SOURCE_A);
    let b = w.write("b.xml", SOURCE_B);
    let c = w.write(
        "c.xml",
        "<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>",
    );
    let dtd = w.write("ab.dtd", DTD);
    let merged = w.path("merged.xml");
    let out = imprecise(&[
        "integrate",
        "--out",
        merged.to_str().unwrap(),
        "--rules",
        "addressbook",
        "--dtd",
        dtd.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        c.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("3 possible worlds"),
        "{}",
        stderr(&out)
    );
    let out = imprecise(&["query", merged.to_str().unwrap(), "//person/nm"]);
    let text = stdout(&out);
    assert!(text.contains("100.0% Mary"), "{text}");
    assert!(text.contains("100.0% John"), "{text}");
}

#[test]
fn rule_files_are_read_from_disk() {
    let w = Workdir::new("rules");
    let a = w.write("a.xml", SOURCE_A);
    let b = w.write("b.xml", SOURCE_B);
    let rules = w.write(
        "rules.txt",
        "rule deep-equal\nrule similarity person nm >= 0.85 using person-name\n",
    );
    let merged = w.path("m.xml");
    let out = imprecise(&[
        "integrate",
        "--out",
        merged.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // A malformed rule file is reported with its line number.
    let bad = w.write("bad.txt", "rule deep-equal\nrule sounds-like x\n");
    let out = imprecise(&[
        "integrate",
        "--out",
        merged.to_str().unwrap(),
        "--rules",
        bad.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
}

#[test]
fn integrate_flags_resumable_components_and_refine_converges() {
    let w = Workdir::new("refine");
    let a = w.write("a.xml", &confusable_catalog(1, 4));
    let b = w.write("b.xml", &confusable_catalog(2, 4));
    // Ground truth: the unbudgeted integration.
    let exact = w.path("exact.xml");
    let out = imprecise(&[
        "integrate",
        "--out",
        exact.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(!stderr(&out).contains("truncated"), "{}", stderr(&out));

    // A budgeted run flags its truncation as resumable.
    let budgeted = w.path("budgeted.xml");
    let out = imprecise(&[
        "integrate",
        "--out",
        budgeted.to_str().unwrap(),
        "--budget",
        "16",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let log = stderr(&out);
    assert!(log.contains("1 component(s) truncated"), "{log}");
    assert!(log.contains("/catalog/movie"), "{log}");
    assert!(log.contains("kept 16 matchings"), "{log}");
    assert!(log.contains("resumable ("), "{log}");
    assert!(log.contains("open frontier nodes"), "{log}");

    // refine: integrate under a small budget, then staged refinement to
    // exhaustion; the final document equals the unbudgeted one.
    let refined = w.path("refined.xml");
    let out = imprecise(&[
        "refine",
        "--out",
        refined.to_str().unwrap(),
        "--initial-budget",
        "16",
        "--budget",
        "64",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let log = stderr(&out);
    assert!(log.contains("refine step 1"), "{log}");
    assert!(log.contains("refine step 2"), "{log}");
    assert!(log.contains("document is exact now"), "{log}");
    let exact_text = std::fs::read_to_string(&exact).unwrap();
    let refined_text = std::fs::read_to_string(&refined).unwrap();
    assert_eq!(exact_text, refined_text, "refined must equal one-shot");

    // A step limit stops early, leaving an (honest) inexact document.
    let partial = w.path("partial.xml");
    let out = imprecise(&[
        "refine",
        "--out",
        partial.to_str().unwrap(),
        "--initial-budget",
        "16",
        "--budget",
        "8",
        "--steps",
        "1",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let log = stderr(&out);
    assert!(log.contains("refine step 1"), "{log}");
    assert!(!log.contains("refine step 2"), "{log}");
    assert!(log.contains("still open"), "{log}");
}

#[test]
fn refine_on_exact_integration_reports_nothing_to_do() {
    let w = Workdir::new("refine-exact");
    let a = w.write("a.xml", SOURCE_A);
    let b = w.write("b.xml", SOURCE_B);
    let refined = w.path("refined.xml");
    let out = imprecise(&[
        "refine",
        "--out",
        refined.to_str().unwrap(),
        "--rules",
        "addressbook",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("nothing to refine"),
        "{}",
        stderr(&out)
    );
    assert!(refined.exists());
}

#[test]
fn usage_errors_exit_nonzero() {
    let out = imprecise(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
    let out = imprecise(&["query", "/nonexistent/file.xml", "//a"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));
    let out = imprecise(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}
