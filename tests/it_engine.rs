//! End-to-end tests of the [`Engine`] façade over the movie workload —
//! the assertions of the retired `Session` suite, migrated onto the
//! thread-safe API (the `Session` shim itself was removed after its one
//! release of grace). Concurrency-specific behaviour lives in
//! `it_engine_concurrency.rs`.

use imprecise::datagen::movies::movie_schema_text;
use imprecise::datagen::scenarios;
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use imprecise::xml::to_string;
use imprecise::{DocHandle, Engine, ImpreciseError};

/// Unique temp-file path for durable-store tests, removed on drop.
struct ScratchStore(std::path::PathBuf);

impl ScratchStore {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("imprecise-it-{tag}-{}-{n}.seg", std::process::id()));
        let _ = std::fs::remove_file(&path);
        ScratchStore(path)
    }
}

impl Drop for ScratchStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn movie_engine() -> (Engine, DocHandle, DocHandle) {
    let scenario = scenarios::query_db();
    let engine = Engine::builder()
        .oracle(movie_oracle(MovieOracleConfig {
            year_rule: false,
            graded_prior: true,
            ..MovieOracleConfig::default()
        }))
        .schema_text(movie_schema_text())
        .expect("schema parses")
        .build();
    let mpeg7 = engine
        .load_xml("mpeg7", &to_string(&scenario.mpeg7))
        .expect("loads");
    let imdb = engine
        .load_xml("imdb", &to_string(&scenario.imdb))
        .expect("loads");
    (engine, mpeg7, imdb)
}

#[test]
fn movie_engine_full_cycle() {
    let (engine, mpeg7, imdb) = movie_engine();
    let (db, stats) = engine.integrate(&mpeg7, &imdb, "db").expect("integrates");
    assert!(stats.judged_possible > 0);
    assert!(stats.is_exact(), "default budget is ample here");
    let doc_stats = engine.stats(&db).expect("exists");
    assert!(doc_stats.worlds > 1.0);
    assert!(!doc_stats.certain);
    let horror = engine
        .prepare("//movie[.//genre=\"Horror\"]/title")
        .expect("parses");
    let answers = horror
        .run(&engine.snapshot(&db).expect("exists"))
        .expect("query runs");
    assert_eq!(answers.len(), 2);
    // Feedback through the engine.
    let title = engine.prepare("//movie/title").expect("parses");
    let report = engine
        .feedback(&db, &title, "Jaws", true)
        .expect("feedback applies");
    assert!(report.worlds_after <= report.worlds_before);
}

#[test]
fn incremental_three_source_integration() {
    let (engine, mpeg7, imdb) = movie_engine();
    let (db, _) = engine.integrate(&mpeg7, &imdb, "db").expect("first");
    // A third source arrives: integrate it into the probabilistic result.
    let late = engine
        .load_xml(
            "late",
            "<catalog><movie><title>Alien</title><year>1979</year>\
             <genre>Horror</genre><director>Ridley Scott</director></movie></catalog>",
        )
        .expect("loads");
    let (db2, _) = engine.integrate(&db, &late, "db2").expect("incremental");
    let horror = engine
        .prepare("//movie[.//genre=\"Horror\"]/title")
        .expect("parses");
    let answers = horror
        .run(&engine.snapshot(&db2).expect("exists"))
        .expect("query runs");
    assert!((answers.probability_of("Alien") - 1.0).abs() < 1e-9);
    assert!(answers.probability_of("Jaws") > 0.9);
}

#[test]
fn integrate_many_matches_manual_fold() {
    let (engine, mpeg7, imdb) = movie_engine();
    let late = engine
        .load_xml(
            "late",
            "<catalog><movie><title>Alien</title><year>1979</year>\
             <genre>Horror</genre><director>Ridley Scott</director></movie></catalog>",
        )
        .expect("loads");
    // The N-source fold is the two manual steps in one call.
    let (db_manual, _) = engine.integrate(&mpeg7, &imdb, "manual-1").expect("step 1");
    let (db_manual, _) = engine
        .integrate(&db_manual, &late, "manual-2")
        .expect("step 2");
    let (db_fold, steps) = engine
        .integrate_many(&[mpeg7, imdb, late], "fold")
        .expect("folds");
    assert_eq!(steps.len(), 2);
    let manual = engine.stats(&db_manual).expect("exists");
    let folded = engine.stats(&db_fold).expect("exists");
    assert_eq!(manual.worlds, folded.worlds);
    assert_eq!(manual.breakdown, folded.breakdown);
}

#[test]
fn many_sources_scenario_folds_with_bounded_uncertainty() {
    let scenario = imprecise::datagen::scenarios::many_sources(4, 1);
    let engine = Engine::builder()
        .oracle(movie_oracle(MovieOracleConfig::default()))
        .schema(scenario.schema.clone())
        .build();
    let handles: Vec<DocHandle> = scenario
        .sources
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            engine
                .load_xml(&format!("src-{i}"), &to_string(doc))
                .expect("loads")
        })
        .collect();
    let (db, steps) = engine.integrate_many(&handles, "db").expect("folds");
    assert_eq!(steps.len(), 3);
    // The deep-equal backbone folds certainly; only the same-year
    // re-editions stay undecided, and more of them per step.
    assert!(steps.iter().all(|s| s.judged_possible > 0));
    let stats = engine.stats(&db).expect("exists");
    assert!(stats.worlds > 1.0);
    assert!(stats.worlds < 1e6, "uncertainty stays bounded at N=4");
    // Certain backbone titles answer with probability 1 after the fold.
    let q = engine.prepare("//movie/title").expect("parses");
    let answers = q.run(&engine.snapshot(&db).expect("exists")).expect("runs");
    assert!((answers.probability_of("Die Hard") - 1.0).abs() < 1e-9);
    assert!((answers.probability_of("Mission: Impossible II") - 1.0).abs() < 1e-9);
}

#[test]
fn export_reimport_preserves_distribution() {
    let (engine, mpeg7, imdb) = movie_engine();
    let (db, _) = engine.integrate(&mpeg7, &imdb, "db").expect("integrates");
    let worlds_before = engine.stats(&db).expect("exists").worlds;
    let text = engine.export(&db).expect("exports");
    assert!(text.contains("px:prob"));
    let engine2 = Engine::new();
    let copy = engine2.load_xml("db", &text).expect("reimports");
    assert_eq!(engine2.stats(&copy).expect("exists").worlds, worlds_before);
}

#[test]
fn errors_are_descriptive() {
    let engine = Engine::new();
    let ghost = {
        // A handle from another engine is this engine's "no such
        // document" case (names alone no longer dangle).
        let other = Engine::new();
        other.load_xml("ghost", "<a/>").expect("loads")
    };
    let err = engine.query(&ghost, "//a", None).unwrap_err();
    assert!(err.to_string().contains("ghost"));
    let x = engine.load_xml("x", "<a/>").expect("loads");
    let err = engine.query(&x, "not a query", None).unwrap_err();
    assert!(matches!(err, ImpreciseError::QueryParse(_)));
    let err = engine.load_xml("bad", "<a><b></a>").unwrap_err();
    assert!(matches!(err, ImpreciseError::Xml(_)));
    let err = Engine::builder().schema_text("<!GIBBERISH>").unwrap_err();
    assert!(matches!(err, ImpreciseError::Xml(_)));
}

#[test]
fn pay_as_you_go_refinement_cycle() {
    use imprecise::integrate::{IntegrationOptions, RefineOptions};
    // The confusable block truncated hard, then refined between queries:
    // the integrate → query → refine → query loop of the README.
    let scenario = scenarios::confusable(4);
    let engine = Engine::builder()
        .oracle(movie_oracle(MovieOracleConfig {
            title_rule: false,
            ..MovieOracleConfig::default()
        }))
        .schema(scenario.schema)
        .options(IntegrationOptions {
            max_matchings_per_component: 8,
            ..IntegrationOptions::default()
        })
        .build();
    let a = engine
        .load_xml("a", &to_string(&scenario.mpeg7))
        .expect("loads");
    let b = engine
        .load_xml("b", &to_string(&scenario.imdb))
        .expect("loads");
    let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
    assert_eq!(stats.components_truncated(), 1);
    let query = engine.prepare("//movie/title").expect("parses");
    // Queries work on the truncated document…
    let before = query
        .run(&engine.snapshot(&db).expect("exists"))
        .expect("evaluates");
    assert!(!before.is_empty());
    // …and keep working, with exact probabilities, after refinement.
    let step = engine
        .refine(&db, &RefineOptions::to_exhaustive())
        .expect("refines");
    assert_eq!(step.remaining, 0);
    assert_eq!(engine.refine_state(&db).expect("exists"), None);
    let after = query
        .run(&engine.snapshot(&db).expect("exists"))
        .expect("evaluates");
    assert_eq!(before.len(), after.len());
    // The version bump invalidated the prepared query's run cache; the
    // re-run reflects the refined distribution.
    assert!(before
        .items
        .iter()
        .any(|ans| (ans.probability - after.probability_of(&ans.value)).abs() > 1e-12));
}

#[test]
fn staged_refinement_emits_deltas_and_keeps_the_arena_clean() {
    use imprecise::integrate::{IntegrationOptions, RefineOptions};
    let scenario = scenarios::confusable(4);
    let engine = Engine::builder()
        .oracle(movie_oracle(MovieOracleConfig {
            title_rule: false,
            ..MovieOracleConfig::default()
        }))
        .schema(scenario.schema)
        .options(IntegrationOptions {
            max_matchings_per_component: 8,
            ..IntegrationOptions::default()
        })
        .build();
    let a = engine
        .load_xml("a", &to_string(&scenario.mpeg7))
        .expect("loads");
    let b = engine
        .load_xml("b", &to_string(&scenario.imdb))
        .expect("loads");
    let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
    assert!(stats.components_truncated() > 0);
    let options = RefineOptions {
        extra_matchings: 4,
        min_retained_mass: None,
        max_components: usize::MAX,
        threads: None,
    };
    let mut detached_baseline: Option<usize> = None;
    let mut steps = 0usize;
    loop {
        let step = engine.refine(&db, &options).expect("refines");
        if step.refined.is_empty() {
            break;
        }
        steps += 1;
        assert!(steps < 10_000, "refinement failed to converge");
        // Incremental emission appends only the delta subtrees…
        assert!(step.emitted_nodes > 0, "a refining step grafts new nodes");
        assert!(step.arena_live <= step.arena_total);
        if step.remaining > 0 {
            // …and detaches nothing while frontiers stay open: arena
            // garbage does not grow with the number of installments.
            // (The final step runs the deferred simplification pass,
            // which legitimately strands nodes — hence the guard.)
            let detached = step.arena_total - step.arena_live;
            let base = *detached_baseline.get_or_insert(detached);
            assert!(
                detached <= base,
                "detached slots grew across refine steps: {base} -> {detached}"
            );
        }
        if step.remaining == 0 {
            break;
        }
    }
    assert!(steps > 1, "budget 8 + extra 4 takes several installments");
    // Occupancy of the published document stays sane after the cycle —
    // feedback included (conditioning detaches pruned possibilities but
    // never grows the arena).
    let before = engine.snapshot(&db).expect("exists").doc().arena_stats();
    let title = engine.prepare("//movie/title").expect("parses");
    let first_title = {
        let answers = title
            .run(&engine.snapshot(&db).expect("exists"))
            .expect("evaluates");
        answers.items[0].value.clone()
    };
    engine
        .feedback(&db, &title, &first_title, true)
        .expect("feedback applies");
    let after = engine.snapshot(&db).expect("exists").doc().arena_stats();
    assert!(
        after.total <= before.total,
        "feedback never grows the arena"
    );
    assert!(after.live <= after.total);
}

#[test]
fn durable_store_resumes_refinement_across_processes() {
    use imprecise::integrate::{IntegrationOptions, RefineOptions};
    // The full crash-safe cycle of the durable store: integrate under a
    // tight budget with a store attached, drop the Engine entirely (the
    // "process" dies mid-refinement), reopen from the segment file in a
    // fresh Engine, refine to exhaustion, and land bit-for-bit on the
    // one-shot exhaustive fingerprint.
    let scratch = ScratchStore::new("resume");
    // Oracle is not Clone, so each engine rebuilds the configuration.
    let builder = |budget: usize| {
        let scenario = scenarios::confusable(4);
        Engine::builder()
            .oracle(movie_oracle(MovieOracleConfig {
                title_rule: false,
                ..MovieOracleConfig::default()
            }))
            .schema(scenario.schema)
            .options(IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            })
    };
    let scenario = scenarios::confusable(4);
    // Ground truth: the same workload integrated exhaustively, no store.
    let truth = {
        let engine = builder(usize::MAX).build();
        let a = engine
            .load_xml("a", &to_string(&scenario.mpeg7))
            .expect("loads");
        let b = engine
            .load_xml("b", &to_string(&scenario.imdb))
            .expect("loads");
        let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
        assert!(stats.is_exact());
        engine.snapshot(&db).expect("exists").doc().fingerprint()
    };
    // "Process one": integrate under budget, publish durably, die.
    {
        let engine = builder(8).with_store(&scratch.0).open().expect("opens");
        let a = engine
            .load_xml("a", &to_string(&scenario.mpeg7))
            .expect("loads");
        let b = engine
            .load_xml("b", &to_string(&scenario.imdb))
            .expect("loads");
        let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
        assert!(stats.components_truncated() > 0, "budget 8 must truncate");
        assert!(engine.refine_state(&db).expect("exists").is_some());
    }
    // "Process two": recover the catalog and the refine frontier.
    let engine = builder(8).with_store(&scratch.0).open().expect("reopens");
    let db = engine.handle("db").expect("recovered from the store");
    let info = engine
        .refine_state(&db)
        .expect("exists")
        .expect("frontier survives recovery");
    assert_eq!(info.recovered_at, Some(1), "provenance marks the recovery");
    assert!(info.open_components > 0);
    let step = engine
        .refine(&db, &RefineOptions::to_exhaustive())
        .expect("refines");
    assert_eq!(step.remaining, 0);
    assert_eq!(engine.refine_state(&db).expect("exists"), None);
    assert_eq!(
        engine.snapshot(&db).expect("exists").doc().fingerprint(),
        truth,
        "cross-process resume must converge to the one-shot exhaustive result"
    );
}

#[test]
fn document_names_listed() {
    let (engine, _, _) = movie_engine();
    assert_eq!(engine.document_names(), vec!["imdb", "mpeg7"]);
}

#[test]
fn stats_report_both_representations() {
    let (engine, mpeg7, imdb) = movie_engine();
    let (db, _) = engine.integrate(&mpeg7, &imdb, "db").expect("integrates");
    let stats = engine.stats(&db).expect("exists");
    // Factored representation never exceeds the unfactored equivalent.
    assert!(stats.breakdown.total() as f64 <= stats.unfactored_nodes);
    assert!(stats.expected_world_size > 0.0);
}
