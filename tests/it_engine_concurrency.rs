//! Concurrency smoke test for the [`Engine`] API: many reader threads
//! query one engine through snapshots and a shared [`PreparedQuery`]
//! while a writer thread keeps publishing new document versions
//! (re-integration and feedback conditioning). Readers must only ever
//! observe one of the *coherent* states — never a torn or
//! half-conditioned document.

use imprecise::oracle::presets::addressbook_oracle;
use imprecise::{DocHandle, DocSnapshot, Engine, EngineBuilder, ImpreciseError, PreparedQuery};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The engine's whole public surface must be shareable across threads.
#[test]
fn engine_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineBuilder>();
    assert_send_sync::<DocHandle>();
    assert_send_sync::<DocSnapshot>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<ImpreciseError>();
}

fn john_engine() -> (Engine, DocHandle, DocHandle) {
    let engine = Engine::builder()
        .oracle(addressbook_oracle())
        .schema_text(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .expect("schema parses")
        .build();
    let a = engine
        .load_xml(
            "a",
            "<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>",
        )
        .expect("source a loads");
    let b = engine
        .load_xml(
            "b",
            "<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>",
        )
        .expect("source b loads");
    (engine, a, b)
}

/// The John document has exactly two coherent states:
///
/// * freshly integrated — 3 worlds, p(1111) = p(2222) = 0.75;
/// * conditioned on "2222 is incorrect" — 1 world, p(1111) = 1, 2222 gone.
///
/// Anything else means a reader saw a torn document.
fn assert_coherent(snapshot: &DocSnapshot, tel: &PreparedQuery) {
    let answers = tel.run(snapshot).expect("query evaluates");
    let p1111 = answers.probability_of("1111");
    let p2222 = answers.probability_of("2222");
    let stats = snapshot.stats();
    let integrated = (p1111 - 0.75).abs() < 1e-9 && (p2222 - 0.75).abs() < 1e-9;
    let conditioned = (p1111 - 1.0).abs() < 1e-9 && p2222 == 0.0;
    assert!(
        integrated || conditioned,
        "torn read at version {}: p(1111) = {p1111}, p(2222) = {p2222}, worlds = {}",
        snapshot.version(),
        stats.worlds
    );
    if integrated {
        assert_eq!(stats.worlds, 3.0, "integrated state must have 3 worlds");
        assert!(!stats.certain);
    } else {
        assert_eq!(stats.worlds, 1.0, "conditioned state must be certain");
        assert!(stats.certain);
    }
}

/// PreparedQuery on the John document reproduces the paper's numbers
/// exactly: 0.75 after integration, certainty after feedback.
#[test]
fn prepared_query_reproduces_paper_results() {
    let (engine, a, b) = john_engine();
    let (merged, stats) = engine.integrate(&a, &b, "merged").expect("integrates");
    assert_eq!(stats.judged_possible, 1);
    let tel = engine.prepare("//person/tel").expect("query parses");
    let answers = tel
        .run(&engine.snapshot(&merged).expect("exists"))
        .expect("runs");
    assert!((answers.probability_of("1111") - 0.75).abs() < 1e-9);
    assert!((answers.probability_of("2222") - 0.75).abs() < 1e-9);
    let report = engine
        .feedback(&merged, &tel, "2222", false)
        .expect("feedback applies");
    assert!(report.worlds_after < report.worlds_before);
    assert!(engine.stats(&merged).expect("exists").certain);
}

/// N reader threads hammer snapshots of one document while a writer
/// thread alternates between re-integrating (3 uncertain worlds) and
/// conditioning via feedback (1 certain world). Every observation must
/// be one of the two coherent states, and versions must be monotone per
/// reader.
#[test]
fn readers_never_observe_torn_documents() {
    const READERS: usize = 4;
    const WRITER_CYCLES: usize = 25;

    let (engine, a, b) = john_engine();
    let (merged, _) = engine.integrate(&a, &b, "merged").expect("integrates");
    let tel = engine.prepare("//person/tel").expect("query parses");

    let done = AtomicBool::new(false);
    let observations = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            // Each reader gets a clone of the engine (same shared catalog)
            // and of the prepared query, as server worker threads would.
            let engine = engine.clone();
            let merged = merged.clone();
            let tel = tel.clone();
            let done = &done;
            let observations = &observations;
            scope.spawn(move || {
                let mut last_version = 0;
                let mut seen = 0usize;
                // Keep reading until the writer is done, but always make
                // a minimum number of observations: on a loaded machine
                // the writer may finish before readers are scheduled.
                while !done.load(Ordering::Relaxed) || seen < 50 {
                    let snapshot = engine.snapshot(&merged).expect("document exists");
                    assert!(
                        snapshot.version() >= last_version,
                        "version went backwards: {} then {}",
                        last_version,
                        snapshot.version()
                    );
                    last_version = snapshot.version();
                    assert_coherent(&snapshot, &tel);
                    seen += 1;
                }
                observations.fetch_add(seen, Ordering::Relaxed);
            });
        }

        // A long-lived snapshot taken before any conditioning: it must
        // keep showing the original distribution through every publish.
        let pinned = engine.snapshot(&merged).expect("document exists");

        for _ in 0..WRITER_CYCLES {
            // Condition the current version down to the certain world…
            engine
                .feedback(&merged, &tel, "2222", false)
                .expect("feedback applies");
            // …then publish a fresh uncertain integration into the slot.
            engine.integrate(&a, &b, "merged").expect("re-integrates");
        }
        done.store(true, Ordering::Relaxed);

        let answers = tel.run(&pinned).expect("pinned snapshot still evaluates");
        assert!((answers.probability_of("2222") - 0.75).abs() < 1e-9);
        assert_eq!(pinned.stats().worlds, 3.0);
    });

    assert!(
        observations.load(Ordering::Relaxed) > 0,
        "readers never got to observe anything"
    );
}

/// Writers racing on the same document slot: optimistic retry in
/// `Engine::feedback` must not lose updates or deadlock. Two threads
/// each confirm a different *consistent* fact; afterwards the document
/// reflects both (single certain world with John's number 1111).
#[test]
fn concurrent_feedback_converges() {
    let (engine, a, b) = john_engine();
    let (merged, _) = engine.integrate(&a, &b, "merged").expect("integrates");
    let tel = engine.prepare("//person/tel").expect("query parses");

    std::thread::scope(|scope| {
        let confirm = {
            let engine = engine.clone();
            let merged = merged.clone();
            let tel = tel.clone();
            scope.spawn(move || engine.feedback(&merged, &tel, "1111", true))
        };
        let reject = {
            let engine = engine.clone();
            let merged = merged.clone();
            let tel = tel.clone();
            scope.spawn(move || engine.feedback(&merged, &tel, "2222", false))
        };
        // "1111 correct" and "2222 incorrect" are individually and jointly
        // satisfiable, so neither application may fail.
        confirm.join().expect("no panic").expect("feedback applies");
        reject.join().expect("no panic").expect("feedback applies");
    });

    let answers = tel
        .run(&engine.snapshot(&merged).expect("exists"))
        .expect("runs");
    assert!((answers.probability_of("1111") - 1.0).abs() < 1e-9);
    assert_eq!(answers.probability_of("2222"), 0.0);
    assert!(engine.stats(&merged).expect("exists").certain);
}
