//! Smoke tests of the experiment shapes at test-friendly scale: the same
//! claims EXPERIMENTS.md records, checked on every `cargo test` run.
//! (The full-scale numbers come from the `imprecise-bench` harnesses.)

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig, TableIRuleSet};

#[test]
fn t1_shape_nodes_drop_by_orders_of_magnitude() {
    // Table I at reduced scale (n=6 franchise entries on the IMDB side).
    let scenario = scenarios::fig5(6);
    let mut nodes = Vec::new();
    for rule_set in TableIRuleSet::ALL {
        let result = integrate_xml(
            &scenario.mpeg7,
            &scenario.imdb,
            &rule_set.oracle(),
            Some(&scenario.schema),
            &IntegrationOptions::default(),
        )
        .expect("integration succeeds");
        nodes.push(result.doc.unfactored_node_count());
    }
    // none ≫ full rules — at least two orders of magnitude, as in Table I.
    assert!(
        nodes[0] / nodes[4] > 100.0,
        "reduction only {}x: {nodes:?}",
        nodes[0] / nodes[4]
    );
    assert!(nodes.windows(2).all(|w| w[0] >= w[1]), "{nodes:?}");
}

#[test]
fn f5_shape_title_only_explodes_title_year_tames() {
    let mk = |year_rule: bool| {
        movie_oracle(MovieOracleConfig {
            genre_rule: false,
            title_rule: true,
            year_rule,
            graded_prior: false,
            ..MovieOracleConfig::default()
        })
    };
    let title_only = mk(false);
    let title_year = mk(true);
    let scenario = scenarios::fig5(12);
    let upper = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &title_only,
        Some(&scenario.schema),
        &IntegrationOptions::default(),
    )
    .expect("integrates")
    .doc
    .unfactored_node_count();
    let lower = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &title_year,
        Some(&scenario.schema),
        &IntegrationOptions::default(),
    )
    .expect("integrates")
    .doc
    .unfactored_node_count();
    assert!(
        upper / lower > 10.0,
        "title-only {upper} should dominate title+year {lower}"
    );
}

#[test]
fn factoring_ablation_gap_grows_with_confusion() {
    // The factored representation's advantage must grow with the workload.
    let oracle = movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: true,
        year_rule: false,
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let mut last_ratio = 0.0;
    for n in [3usize, 6, 12] {
        let scenario = scenarios::fig5(n);
        let doc = integrate_xml(
            &scenario.mpeg7,
            &scenario.imdb,
            &oracle,
            Some(&scenario.schema),
            &IntegrationOptions::default(),
        )
        .expect("integrates")
        .doc;
        let ratio = doc.unfactored_node_count() / doc.reachable_count() as f64;
        assert!(ratio >= 1.0);
        assert!(
            ratio >= last_ratio,
            "factoring advantage shrank at n={n}: {ratio} < {last_ratio}"
        );
        last_ratio = ratio;
    }
    assert!(last_ratio > 10.0, "advantage should be large: {last_ratio}");
}

#[test]
fn world_counts_agree_between_analytic_and_enumeration() {
    let scenario = scenarios::fig5(3);
    let result = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &TableIRuleSet::GenreTitleYear.oracle(),
        Some(&scenario.schema),
        &IntegrationOptions::default(),
    )
    .expect("integrates");
    let analytic = result.doc.world_count();
    let enumerated = result.doc.worlds(1_000_000).expect("bounded").len();
    assert_eq!(analytic, enumerated as u128);
}
