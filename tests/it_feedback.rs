//! The feedback loop across the whole pipeline: integrate, query, give
//! feedback, verify the distribution was conditioned correctly.

use imprecise::datagen::addressbook::{addressbook_schema, fig2_sources};
use imprecise::datagen::scenarios;
use imprecise::feedback::{apply_feedback, FeedbackError};
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{addressbook_oracle, movie_oracle, MovieOracleConfig};
use imprecise::query::{eval_px, eval_px_naive, parse_query};

#[test]
fn feedback_conditions_exactly_like_bayes() {
    let (a, b) = fig2_sources();
    let result = integrate_xml(
        &a,
        &b,
        &addressbook_oracle(),
        Some(&addressbook_schema()),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    let q = parse_query("//person/tel").expect("parses");
    let before = eval_px(&result.doc, &q).expect("evaluates");
    let p_1111 = before.probability_of("1111");
    let (after, report) =
        apply_feedback(&result.doc, &q, "1111", true, 100_000).expect("feedback applies");
    // Bayes: P(2222 | 1111 in answer) = P(both in answer) / P(1111).
    // Both appear together only in the two-person world (p = 0.5).
    let after_answers = eval_px(&after, &q).expect("evaluates");
    let expected_2222 = 0.5 / p_1111;
    assert!(
        (after_answers.probability_of("2222") - expected_2222).abs() < 1e-9,
        "got {}, expected {expected_2222}",
        after_answers.probability_of("2222")
    );
    assert!((report.event_probability - p_1111).abs() < 1e-9);
    after.validate().expect("conditioned doc is valid");
}

#[test]
fn sequential_feedback_reaches_certainty() {
    let (a, b) = fig2_sources();
    let mut doc = integrate_xml(
        &a,
        &b,
        &addressbook_oracle(),
        Some(&addressbook_schema()),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds")
    .doc;
    let q = parse_query("//person/tel").expect("parses");
    // Reject 2222 → only the one-John-1111 world remains.
    let (next, _) = apply_feedback(&doc, &q, "2222", false, 100_000).expect("applies");
    doc = next;
    assert!(doc.is_certain());
    let answers = eval_px(&doc, &q).expect("evaluates");
    assert!((answers.probability_of("1111") - 1.0).abs() < 1e-9);
    assert_eq!(answers.probability_of("2222"), 0.0);
    // Further consistent feedback is a no-op; contradictory feedback errs.
    let (same, report) = apply_feedback(&doc, &q, "1111", true, 100_000).expect("applies");
    assert_eq!(report.worlds_after, 1.0);
    assert!(same.is_certain());
    assert!(matches!(
        apply_feedback(&doc, &q, "2222", true, 100_000),
        Err(FeedbackError::Contradiction)
    ));
}

#[test]
fn feedback_on_movie_titles_prunes_typo_worlds() {
    let scenario = scenarios::query_db();
    let oracle = movie_oracle(MovieOracleConfig {
        genre_rule: true,
        title_rule: true,
        year_rule: false,
        graded_prior: true,
        ..MovieOracleConfig::default()
    });
    let doc = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &oracle,
        Some(&scenario.schema),
        &IntegrationOptions {
            source_weights: (0.8, 0.2),
            ..IntegrationOptions::default()
        },
    )
    .expect("integration succeeds")
    .doc;
    let john = parse_query("//movie[some $d in .//director satisfies contains($d,\"John\")]/title")
        .expect("parses");
    let before = eval_px(&doc, &john).expect("evaluates");
    assert!(before.probability_of("Mission: Impossible") > 0.0);
    // The user knows Mission: Impossible (the 1996 one) was NOT directed
    // by a John: rejecting it kills the typo-merge worlds.
    let (after, report) = apply_feedback(&doc, &john, "Mission: Impossible", false, 1_000_000)
        .expect("feedback applies");
    assert!(report.worlds_after < report.worlds_before);
    let after_answers = eval_px(&after, &john).expect("evaluates");
    assert_eq!(after_answers.probability_of("Mission: Impossible"), 0.0);
    // The legitimate answers survive, stronger than before.
    assert!((after_answers.probability_of("Die Hard: With a Vengeance") - 1.0).abs() < 1e-9);
    assert!(
        after_answers.probability_of("Mission: Impossible II")
            >= before.probability_of("Mission: Impossible II") - 1e-9
    );
}

#[test]
fn feedback_agrees_with_naive_conditioning() {
    // Conditioning then querying must equal filtering worlds by hand.
    let (a, b) = fig2_sources();
    let doc = integrate_xml(
        &a,
        &b,
        &addressbook_oracle(),
        Some(&addressbook_schema()),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds")
    .doc;
    let q = parse_query("//person/tel").expect("parses");
    let (conditioned, _) = apply_feedback(&doc, &q, "1111", true, 100_000).expect("applies");
    let exact = eval_px(&conditioned, &q).expect("evaluates");
    let naive = eval_px_naive(&conditioned, &q, 100_000).expect("bounded");
    for item in &naive.items {
        assert!((exact.probability_of(&item.value) - item.probability).abs() < 1e-9);
    }
}
