//! Regression tests for the probability-sum invariant the possibility
//! model rests on: at every choice point the possibility weights sum to 1
//! within [`imprecise::pxml::PROB_EPSILON`], after every operation that
//! rewrites weights — weighted merge, incremental re-integration, and
//! pruning with renormalisation.

use imprecise::datagen::movies::{catalog_to_xml, movie_schema, MovieBuilder, SourceStyle};
use imprecise::integrate::{integrate_px, integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{addressbook_oracle, movie_oracle, MovieOracleConfig};
use imprecise::pxml::{PxDoc, PROB_EPSILON};
use imprecise::xml::{parse, Schema};

/// Assert the invariant directly, choice point by choice point (validate()
/// checks the same thing, but through its own tolerance aggregation — this
/// keeps the regression readable and the failure message specific).
fn assert_unit_mass(doc: &PxDoc, context: &str) {
    doc.validate()
        .unwrap_or_else(|e| panic!("{context}: invalid document: {e}"));
    for prob in doc.prob_nodes() {
        let sum: f64 = doc.possibilities(prob).iter().map(|(_, p)| *p).sum();
        let count = doc.children(prob).len() as f64;
        assert!(
            (sum - 1.0).abs() <= PROB_EPSILON * count.max(1.0) * 1e3,
            "{context}: possibilities of {prob:?} sum to {sum}"
        );
    }
}

fn addressbook(xml: &str) -> imprecise::xml::XmlDoc {
    parse(xml).expect("well-formed fixture")
}

fn addressbook_schema() -> Schema {
    Schema::parse(
        "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
         <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
    )
    .expect("valid schema")
}

#[test]
fn weighted_merge_keeps_unit_mass_at_every_choice_point() {
    let a = addressbook("<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>");
    let b = addressbook("<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>");
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    // Unnormalised and extreme weight ratios must both come out normalised.
    for weights in [(3.0, 1.0), (0.8, 0.2), (1e6, 1.0), (0.001, 0.999)] {
        let opts = IntegrationOptions {
            source_weights: weights,
            ..IntegrationOptions::default()
        };
        let result =
            integrate_xml(&a, &b, &oracle, Some(&schema), &opts).expect("integration succeeds");
        assert_unit_mass(&result.doc, &format!("weights {weights:?}"));
        let total: f64 = result
            .doc
            .world_distribution(1000)
            .expect("small doc")
            .iter()
            .map(|w| w.prob)
            .sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "weights {weights:?}: world mass {total}"
        );
    }
}

#[test]
fn incremental_reintegration_keeps_unit_mass() {
    let schema = movie_schema();
    let oracle = movie_oracle(MovieOracleConfig::default());
    let jaws = |year: u32| {
        catalog_to_xml(
            &[MovieBuilder::new(1, "Jaws", year).genre("Horror").build()],
            SourceStyle::Mpeg7,
        )
    };
    let first = integrate_xml(
        &jaws(1975),
        &catalog_to_xml(
            &[MovieBuilder::new(2, "Jaws", 1975).genre("horror").build()],
            SourceStyle::Imdb,
        ),
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .expect("first round succeeds");
    assert_unit_mass(&first.doc, "first round");

    // Feed the probabilistic result back in against a third source: the
    // locally enumerated combinations must renormalise to unit mass too.
    let third = imprecise::pxml::from_xml(&jaws(1976));
    let second = integrate_px(
        &first.doc,
        &third,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .expect("incremental round succeeds");
    assert_unit_mass(&second.doc, "incremental round");
}

#[test]
fn prune_renormalises_to_unit_mass_at_every_epsilon() {
    let a = addressbook(
        "<addressbook>\
         <person><nm>John</nm><tel>1111</tel></person>\
         <person><nm>Mary</nm><tel>3333</tel></person>\
         </addressbook>",
    );
    let b = addressbook(
        "<addressbook>\
         <person><nm>John</nm><tel>2222</tel></person>\
         <person><nm>Mary</nm><tel>3333</tel></person>\
         </addressbook>",
    );
    let result = integrate_xml(
        &a,
        &b,
        &addressbook_oracle(),
        Some(&addressbook_schema()),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    for eps_tenths in 0..=10 {
        let eps = f64::from(eps_tenths) / 10.0;
        let mut pruned = result.doc.clone();
        let stats = pruned.prune_below(eps);
        assert_unit_mass(&pruned, &format!("prune eps={eps}"));
        assert!(stats.worlds_after >= 1.0, "prune eps={eps} emptied the doc");
    }
    // Top-k pruning renormalises the same way.
    for k in 1..=3 {
        let mut pruned = result.doc.clone();
        pruned.prune_keep_top(k);
        assert_unit_mass(&pruned, &format!("prune top-{k}"));
    }
}

// ---------------------------------------------------------------------
// Deep invariant verification through the engine (PR 7): the corruption
// classes `Engine::check_invariants` must report, and the
// integrate → refine → feedback → compact sweep over every datagen
// scenario family that must stay verifiably clean end to end. Under
// `--features strict-invariants` the same sweep additionally
// shadow-checks every publish.

use imprecise::datagen::{addressbook as ab, scenarios};
use imprecise::integrate::{InvariantViolation, RefineOptions};
use imprecise::oracle::Oracle;
use imprecise::xml::to_string;
use imprecise::{DocHandle, Engine, ImpreciseError};

/// Drive one scenario end to end, checking invariants between stages:
/// budgeted fold over the sources, staged refinement (which compacts
/// when garbage crosses the thresholds), feedback on a real answer,
/// and a final refine on the conditioned (finalized) document.
fn drive(engine: &Engine, sources: &[DocHandle], query_text: &str, context: &str) {
    let (db, _) = engine
        .integrate_many(sources, "db")
        .unwrap_or_else(|e| panic!("{context}: fold fails: {e}"));
    engine
        .check_invariants(&db)
        .unwrap_or_else(|e| panic!("{context}: after integrate: {e}"));
    let step_options = RefineOptions {
        extra_matchings: 2,
        ..RefineOptions::default()
    };
    for round in 0..3 {
        engine
            .refine(&db, &step_options)
            .unwrap_or_else(|e| panic!("{context}: refine round {round} fails: {e}"));
        engine
            .check_invariants(&db)
            .unwrap_or_else(|e| panic!("{context}: after refine round {round}: {e}"));
    }
    let query = engine.prepare(query_text).expect("query parses");
    let answers = query
        .run(&engine.snapshot(&db).expect("db exists"))
        .unwrap_or_else(|e| panic!("{context}: query fails: {e}"));
    if let Some(answer) = answers.at_least(0.0).next() {
        let value = answer.value.clone();
        engine
            .feedback(&db, &query, &value, true)
            .unwrap_or_else(|e| panic!("{context}: feedback on {value:?} fails: {e}"));
        engine
            .check_invariants(&db)
            .unwrap_or_else(|e| panic!("{context}: after feedback: {e}"));
    }
    // Conditioning finalizes the frontiers; refine must report an empty
    // step and the document must still verify.
    engine
        .refine(&db, &RefineOptions::to_exhaustive())
        .unwrap_or_else(|e| panic!("{context}: post-feedback refine fails: {e}"));
    engine
        .check_invariants(&db)
        .unwrap_or_else(|e| panic!("{context}: after finalized refine: {e}"));
}

fn movie_scenario_engine(oracle: Oracle, budget: usize) -> Engine {
    Engine::builder()
        .oracle(oracle)
        .schema_text(imprecise::datagen::movies::movie_schema_text())
        .expect("schema parses")
        .options(IntegrationOptions {
            max_matchings_per_component: budget,
            ..IntegrationOptions::default()
        })
        .build()
}

fn load_pair(engine: &Engine, scenario: &scenarios::MovieScenario) -> Vec<DocHandle> {
    vec![
        engine
            .load_xml("mpeg7", &to_string(&scenario.mpeg7))
            .expect("mpeg7 loads"),
        engine
            .load_xml("imdb", &to_string(&scenario.imdb))
            .expect("imdb loads"),
    ]
}

#[test]
fn movie_scenarios_verify_end_to_end() {
    for (scenario, budget) in [
        (scenarios::sequels_t1(), 4),
        (scenarios::typical(), 4),
        (scenarios::query_db(), 8),
    ] {
        let engine = movie_scenario_engine(
            movie_oracle(MovieOracleConfig {
                year_rule: false,
                graded_prior: true,
                ..MovieOracleConfig::default()
            }),
            budget,
        );
        let handles = load_pair(&engine, &scenario);
        drive(
            &engine,
            &handles,
            "//movie/title",
            &scenario.info.name.clone(),
        );
    }
}

#[test]
fn confusable_scenarios_verify_end_to_end() {
    for scenario in [scenarios::confusable(4), scenarios::confusable_grid(2, 2)] {
        // Title/year rules off: the confusable blocks stay undecided and
        // the budget of 3 truncates, so refinement has real work.
        let engine = movie_scenario_engine(
            movie_oracle(MovieOracleConfig {
                title_rule: false,
                year_rule: false,
                graded_prior: true,
                ..MovieOracleConfig::default()
            }),
            3,
        );
        let handles = load_pair(&engine, &scenario);
        drive(
            &engine,
            &handles,
            "//movie/title",
            &scenario.info.name.clone(),
        );
    }
}

#[test]
fn many_sources_scenario_verifies_end_to_end() {
    let scenario = scenarios::many_sources(3, 1);
    let engine = Engine::builder()
        .oracle(movie_oracle(MovieOracleConfig::default()))
        .schema(scenario.schema.clone())
        .options(IntegrationOptions {
            max_matchings_per_component: 3,
            ..IntegrationOptions::default()
        })
        .build();
    let handles: Vec<DocHandle> = scenario
        .sources
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            engine
                .load_xml(&format!("src-{i}"), &to_string(doc))
                .expect("source loads")
        })
        .collect();
    drive(&engine, &handles, "//movie/title", &scenario.name);
}

#[test]
fn addressbook_scenarios_verify_end_to_end() {
    let engine = Engine::builder()
        .oracle(addressbook_oracle())
        .schema_text(ab::addressbook_schema_text())
        .expect("schema parses")
        .options(IntegrationOptions {
            max_matchings_per_component: 2,
            ..IntegrationOptions::default()
        })
        .build();
    let (a, b) = ab::fig2_sources();
    let handles = vec![
        engine.load_xml("a", &to_string(&a)).expect("a loads"),
        engine.load_xml("b", &to_string(&b)).expect("b loads"),
    ];
    drive(&engine, &handles, "//person/tel", "fig2");

    let (pa, pb) = ab::random_addressbook_pair(7, 6, 4, 0.5);
    let handles = vec![
        engine
            .load_xml("ra", &to_string(&ab::addressbook_to_xml(&pa)))
            .expect("ra loads"),
        engine
            .load_xml("rb", &to_string(&ab::addressbook_to_xml(&pb)))
            .expect("rb loads"),
    ];
    drive(&engine, &handles, "//person/tel", "random-addressbook");
}

/// A document whose probability sum was broken after construction.
fn corrupt_doc() -> PxDoc {
    let mut doc = PxDoc::new();
    let w = doc.add_poss(doc.root(), 1.0);
    let e = doc.add_elem(w, "addressbook");
    let choice = doc.add_prob(e);
    let p1 = doc.add_poss(choice, 0.5);
    doc.add_text_elem(p1, "tel", "1111");
    let p2 = doc.add_poss(choice, 0.5);
    doc.add_text_elem(p2, "tel", "2222");
    doc.set_poss_prob(p1, 0.123);
    doc
}

// With shadow checks on, the corrupt insert never reaches the catalog:
// the publish itself aborts. The typed-error path below is the
// feature-off behaviour.
#[cfg(feature = "strict-invariants")]
#[test]
#[should_panic(expected = "strict-invariants: after publish")]
fn strict_invariants_refuse_to_publish_corrupt_documents() {
    let engine = Engine::builder().oracle(addressbook_oracle()).build();
    let _ = engine.insert("corrupt", corrupt_doc());
}

#[cfg(not(feature = "strict-invariants"))]
#[test]
fn check_invariants_reports_corrupt_documents() {
    let engine = Engine::builder().oracle(addressbook_oracle()).build();
    // A probability sum broken after the fact: the engine cannot tell at
    // insert time (insert is unvalidated by design), but
    // check_invariants must.
    let handle = engine
        .insert("corrupt", corrupt_doc())
        .expect("store-less insert cannot fail");
    let err = engine
        .check_invariants(&handle)
        .expect_err("broken probability sum must be reported");
    assert!(matches!(
        err,
        ImpreciseError::Invariant(InvariantViolation::Doc(_))
    ));
    assert!(
        err.to_string().contains("invariant violation"),
        "unexpected message: {err}"
    );
}

#[test]
fn foreign_refine_state_is_a_typed_error_not_a_panic() {
    // The wrong-component-restore path `Engine::refine` runs through:
    // resuming a persisted frontier against a component it does not
    // belong to must surface `FrontierMismatch` as a typed error (and
    // convert cleanly up the `IntegrateError` -> `ImpreciseError`
    // chain), not panic.
    use imprecise::integrate::{
        Candidate, Component, FrontierEnumerator, IntegrateError, MatchBudget,
    };
    let component = |p: f64| Component {
        a_nodes: vec![0, 1],
        b_nodes: vec![0, 1],
        forced: Vec::new(),
        possible: vec![
            Candidate { a: 0, b: 0, p },
            Candidate { a: 0, b: 1, p },
            Candidate { a: 1, b: 0, p },
            Candidate { a: 1, b: 1, p },
        ],
    };
    let mine = std::sync::Arc::new(component(0.5));
    let mut enumerator = FrontierEnumerator::new(mine.clone());
    enumerator.run(&MatchBudget {
        max_matchings: 2,
        min_retained_mass: None,
    });
    let frontier = enumerator.frontier().expect("budget of 2 leaves work open");
    // Same shape, different candidate probabilities: the content digest
    // must reject the restore.
    let foreign = std::sync::Arc::new(component(0.25));
    let mismatch = match FrontierEnumerator::restore(foreign, &frontier) {
        Err(mismatch) => mismatch,
        Ok(_) => panic!("foreign restore must fail"),
    };
    assert_ne!(mismatch.expected, mismatch.found);
    let err = ImpreciseError::from(IntegrateError::from(mismatch));
    assert!(
        err.to_string().contains("does not belong"),
        "unexpected message: {err}"
    );
    // The genuine owner still restores.
    FrontierEnumerator::restore(mine, &frontier).expect("own component restores");
}
