//! Regression tests for the probability-sum invariant the possibility
//! model rests on: at every choice point the possibility weights sum to 1
//! within [`imprecise::pxml::PROB_EPSILON`], after every operation that
//! rewrites weights — weighted merge, incremental re-integration, and
//! pruning with renormalisation.

use imprecise::datagen::movies::{catalog_to_xml, movie_schema, MovieBuilder, SourceStyle};
use imprecise::integrate::{integrate_px, integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{addressbook_oracle, movie_oracle, MovieOracleConfig};
use imprecise::pxml::{PxDoc, PROB_EPSILON};
use imprecise::xml::{parse, Schema};

/// Assert the invariant directly, choice point by choice point (validate()
/// checks the same thing, but through its own tolerance aggregation — this
/// keeps the regression readable and the failure message specific).
fn assert_unit_mass(doc: &PxDoc, context: &str) {
    doc.validate()
        .unwrap_or_else(|e| panic!("{context}: invalid document: {e}"));
    for prob in doc.prob_nodes() {
        let sum: f64 = doc.possibilities(prob).iter().map(|(_, p)| *p).sum();
        let count = doc.children(prob).len() as f64;
        assert!(
            (sum - 1.0).abs() <= PROB_EPSILON * count.max(1.0) * 1e3,
            "{context}: possibilities of {prob:?} sum to {sum}"
        );
    }
}

fn addressbook(xml: &str) -> imprecise::xml::XmlDoc {
    parse(xml).expect("well-formed fixture")
}

fn addressbook_schema() -> Schema {
    Schema::parse(
        "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
         <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
    )
    .expect("valid schema")
}

#[test]
fn weighted_merge_keeps_unit_mass_at_every_choice_point() {
    let a = addressbook("<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>");
    let b = addressbook("<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>");
    let schema = addressbook_schema();
    let oracle = addressbook_oracle();
    // Unnormalised and extreme weight ratios must both come out normalised.
    for weights in [(3.0, 1.0), (0.8, 0.2), (1e6, 1.0), (0.001, 0.999)] {
        let opts = IntegrationOptions {
            source_weights: weights,
            ..IntegrationOptions::default()
        };
        let result =
            integrate_xml(&a, &b, &oracle, Some(&schema), &opts).expect("integration succeeds");
        assert_unit_mass(&result.doc, &format!("weights {weights:?}"));
        let total: f64 = result
            .doc
            .world_distribution(1000)
            .expect("small doc")
            .iter()
            .map(|w| w.prob)
            .sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "weights {weights:?}: world mass {total}"
        );
    }
}

#[test]
fn incremental_reintegration_keeps_unit_mass() {
    let schema = movie_schema();
    let oracle = movie_oracle(MovieOracleConfig::default());
    let jaws = |year: u32| {
        catalog_to_xml(
            &[MovieBuilder::new(1, "Jaws", year).genre("Horror").build()],
            SourceStyle::Mpeg7,
        )
    };
    let first = integrate_xml(
        &jaws(1975),
        &catalog_to_xml(
            &[MovieBuilder::new(2, "Jaws", 1975).genre("horror").build()],
            SourceStyle::Imdb,
        ),
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .expect("first round succeeds");
    assert_unit_mass(&first.doc, "first round");

    // Feed the probabilistic result back in against a third source: the
    // locally enumerated combinations must renormalise to unit mass too.
    let third = imprecise::pxml::from_xml(&jaws(1976));
    let second = integrate_px(
        &first.doc,
        &third,
        &oracle,
        Some(&schema),
        &IntegrationOptions::default(),
    )
    .expect("incremental round succeeds");
    assert_unit_mass(&second.doc, "incremental round");
}

#[test]
fn prune_renormalises_to_unit_mass_at_every_epsilon() {
    let a = addressbook(
        "<addressbook>\
         <person><nm>John</nm><tel>1111</tel></person>\
         <person><nm>Mary</nm><tel>3333</tel></person>\
         </addressbook>",
    );
    let b = addressbook(
        "<addressbook>\
         <person><nm>John</nm><tel>2222</tel></person>\
         <person><nm>Mary</nm><tel>3333</tel></person>\
         </addressbook>",
    );
    let result = integrate_xml(
        &a,
        &b,
        &addressbook_oracle(),
        Some(&addressbook_schema()),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    for eps_tenths in 0..=10 {
        let eps = f64::from(eps_tenths) / 10.0;
        let mut pruned = result.doc.clone();
        let stats = pruned.prune_below(eps);
        assert_unit_mass(&pruned, &format!("prune eps={eps}"));
        assert!(stats.worlds_after >= 1.0, "prune eps={eps} emptied the doc");
    }
    // Top-k pruning renormalises the same way.
    for k in 1..=3 {
        let mut pruned = result.doc.clone();
        pruned.prune_keep_top(k);
        assert_unit_mass(&pruned, &format!("prune top-{k}"));
    }
}
