//! End-to-end movie-integration pipeline tests over the generated
//! IMDB/MPEG-7 corpora — the §V experiments at test-friendly scale.

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig, TableIRuleSet};

fn integrate(
    scenario: &scenarios::MovieScenario,
    rule_set: TableIRuleSet,
) -> imprecise::integrate::IntegrationOutcome {
    integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &rule_set.oracle(),
        Some(&scenario.schema),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds")
}

#[test]
fn rules_monotonically_reduce_uncertainty() {
    // Table I's shape on a test-sized workload.
    let scenario = scenarios::fig5(6);
    let mut last = f64::INFINITY;
    for rule_set in TableIRuleSet::ALL {
        let result = integrate(&scenario, rule_set);
        result.doc.validate().expect("valid result");
        let nodes = result.doc.unfactored_node_count();
        assert!(
            nodes <= last,
            "{}: {} > previous {}",
            rule_set.label(),
            nodes,
            last
        );
        last = nodes;
    }
}

#[test]
fn full_rule_set_keeps_only_franchise_confusion() {
    let scenario = scenarios::sequels_t1();
    let result = integrate(&scenario, TableIRuleSet::GenreTitleYear);
    // Per franchise the shared sequel and the same-year TV remake stay
    // undecided (2 × 3 franchises); every other movie pair is absolutely
    // decided. Further undecided pairs may only be nested (director-name
    // conventions inside merged movies), never movie-level.
    assert_eq!(result.stats.undecided_by_tag.get("movie"), Some(&6));
    assert!(result.stats.judged_nonmatch > 10);
    // Rule attribution is recorded.
    assert!(result.stats.rule_decisions.contains_key("movie-title"));
    assert!(result.stats.rule_decisions.contains_key("movie-year"));
}

#[test]
fn typical_conditions_match_the_paper() {
    let scenario = scenarios::typical();
    let oracle = movie_oracle(MovieOracleConfig {
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let result = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &oracle,
        Some(&scenario.schema),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds");
    assert_eq!(result.stats.judged_possible, 2, "the paper's two occasions");
    assert_eq!(result.doc.world_count(), 4, "the paper's four worlds");
    // Representation stays tiny compared to confusing conditions.
    assert!(result.doc.unfactored_node_count() < 10_000.0);
}

#[test]
fn fig5_growth_is_monotone_and_ordered() {
    use imprecise::oracle::Oracle;
    let title_only: Oracle = {
        use imprecise::oracle::presets::*;
        movie_oracle(MovieOracleConfig {
            genre_rule: false,
            title_rule: true,
            year_rule: false,
            graded_prior: false,
            ..MovieOracleConfig::default()
        })
    };
    let title_year: Oracle = {
        use imprecise::oracle::presets::*;
        movie_oracle(MovieOracleConfig {
            genre_rule: false,
            title_rule: true,
            year_rule: true,
            graded_prior: false,
            ..MovieOracleConfig::default()
        })
    };
    let mut upper_prev = 0.0;
    let mut lower_prev = 0.0;
    for n in [3usize, 6, 9, 12] {
        let scenario = scenarios::fig5(n);
        let upper = integrate_xml(
            &scenario.mpeg7,
            &scenario.imdb,
            &title_only,
            Some(&scenario.schema),
            &IntegrationOptions::default(),
        )
        .expect("title-only integrates")
        .doc
        .unfactored_node_count();
        let lower = integrate_xml(
            &scenario.mpeg7,
            &scenario.imdb,
            &title_year,
            Some(&scenario.schema),
            &IntegrationOptions::default(),
        )
        .expect("title+year integrates")
        .doc
        .unfactored_node_count();
        assert!(upper >= upper_prev, "upper series monotone at n={n}");
        assert!(lower >= lower_prev, "lower series monotone at n={n}");
        assert!(
            upper >= lower,
            "year rule only removes possibilities at n={n}"
        );
        upper_prev = upper;
        lower_prev = lower;
    }
}

#[test]
fn integration_worlds_conform_to_the_movie_dtd() {
    // The world space is too large to enumerate exhaustively; validate a
    // deterministic sample spread across the whole index range (every
    // stride-th world hits different choice combinations because world
    // indices decode mixed-radix over the choice points).
    let scenario = scenarios::fig5(6);
    let result = integrate(&scenario, TableIRuleSet::GenreTitleYear);
    let count = result.doc.world_count();
    assert!(count > 1, "workload must be uncertain");
    let samples: u128 = 500;
    let stride = (count / samples).max(1);
    let mut validated = 0u32;
    let mut k = 0u128;
    while k < count {
        let world = result.doc.nth_world(k).expect("k < count");
        scenario
            .schema
            .validate(&world.doc)
            .expect("every world is DTD-valid");
        validated += 1;
        k += stride;
    }
    // The last world exercises the final possibility of every choice.
    let last = result.doc.nth_world(count - 1).expect("in range");
    scenario
        .schema
        .validate(&last.doc)
        .expect("last world valid");
    assert!(validated >= 100, "sampled {validated} worlds");
}

/// Minimum over all possible worlds of the number of `tag` elements —
/// exact, by dynamic programming over the probabilistic tree (choices
/// minimise, sequences add).
fn min_tag_count(px: &imprecise::pxml::PxDoc, node: imprecise::pxml::PxNodeId, tag: &str) -> u64 {
    use imprecise::pxml::PxNodeKind;
    match px.kind(node) {
        PxNodeKind::Text(_) => 0,
        PxNodeKind::Elem { tag: t, .. } => {
            let own = u64::from(t == tag);
            own + px
                .children(node)
                .iter()
                .map(|&c| min_tag_count(px, c, tag))
                .sum::<u64>()
        }
        PxNodeKind::Poss(_) => px
            .children(node)
            .iter()
            .map(|&c| min_tag_count(px, c, tag))
            .sum(),
        PxNodeKind::Prob => px
            .children(node)
            .iter()
            .map(|&c| min_tag_count(px, c, tag))
            .min()
            .unwrap_or(0),
    }
}

#[test]
fn shared_rwos_can_merge_under_every_rule_set() {
    // The true matches must never be ruled out: in every rule set there is
    // at least one world where the shared movies merged (fewer movie
    // elements than the union). Computed analytically — the world space
    // under the weak rule sets is astronomically large.
    let scenario = scenarios::fig5(3);
    let union_count = (scenario.info.mpeg7_movies + scenario.info.imdb_movies) as u64;
    for rule_set in TableIRuleSet::ALL {
        let result = integrate(&scenario, rule_set);
        let min_movies = min_tag_count(&result.doc, result.doc.root(), "movie");
        assert!(
            min_movies < union_count,
            "{}: min {min_movies} vs union {union_count}",
            rule_set.label()
        );
        // And the no-merge world must exist too (matching nothing is
        // always possible: the Oracle's certain matches are the only
        // forced merges, and this workload has none).
        assert!(min_movies >= union_count - scenario.info.shared_rwos as u64 - 3);
    }
}

#[test]
fn unfactored_count_matches_materialization_on_small_workload() {
    let scenario = scenarios::fig5(3);
    let result = integrate(&scenario, TableIRuleSet::GenreTitleYear);
    let analytic = result.doc.unfactored_node_count();
    let materialized = result
        .doc
        .to_unfactored(10_000_000)
        .expect("fits")
        .reachable_count();
    assert_eq!(analytic, materialized as f64);
}
