//! End-to-end tests of the planned, streaming query pipeline:
//! `QueryPlan` / `AnswerStream` against the classic evaluators, with
//! the threshold-pushdown edge cases the plan layer must get right.

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use imprecise::pxml::PxDoc;
use imprecise::query::{eval_px, eval_px_naive, parse_query, QueryPlan, RankedAnswers};
use imprecise::Engine;

/// The §VI integrated query database (same configuration as the
/// `imprecise-bench` experiments: confusing conditions, graded prior).
fn query_db() -> PxDoc {
    let scenario = scenarios::query_db();
    let oracle = movie_oracle(MovieOracleConfig {
        genre_rule: true,
        title_rule: true,
        year_rule: false,
        graded_prior: true,
        ..MovieOracleConfig::default()
    });
    let options = IntegrationOptions {
        source_weights: (0.8, 0.2),
        ..IntegrationOptions::default()
    };
    integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &oracle,
        Some(&scenario.schema),
        &options,
    )
    .expect("query db integrates")
    .doc
}

const QUERIES: [&str; 4] = [
    "//movie/title",
    "//movie[.//genre=\"Horror\"]/title",
    "//movie[some $d in .//director satisfies contains($d,\"John\")]/title",
    "//title",
];

/// Acceptance: at threshold 0 the planned pipeline is *byte-identical*
/// to `eval_px` — same values, same ranking, bitwise-equal floats — on
/// the paper's integrated query database.
#[test]
fn plan_at_threshold_zero_is_byte_identical_to_eval_px() {
    let db = query_db();
    for q in QUERIES {
        let query = parse_query(q).unwrap();
        let classic = eval_px(&db, &query).unwrap();
        let plan = QueryPlan::compile(&query).with_min_probability(0.0);
        let planned = plan.collect(&db).unwrap();
        let streamed: RankedAnswers = plan.execute(&db).unwrap().collect();
        assert_eq!(planned.len(), classic.len(), "query {q}");
        for (p, c) in planned.items.iter().zip(&classic.items) {
            assert_eq!(p.value, c.value, "query {q}");
            assert_eq!(
                p.probability.to_bits(),
                c.probability.to_bits(),
                "query {q}, value {}",
                p.value
            );
        }
        assert_eq!(streamed.items, planned.items, "query {q}");
    }
}

/// Threshold 1.0 returns exactly the certain answers.
#[test]
fn threshold_one_returns_only_certain_answers() {
    // "Jaws" exists in every world (event True → probability exactly 1);
    // "Jaws 2" only in 30% of them.
    let mut px = PxDoc::new();
    let w = px.add_poss(px.root(), 1.0);
    let cat = px.add_elem(w, "catalog");
    let m1 = px.add_elem(cat, "movie");
    px.add_text_elem(m1, "title", "Jaws");
    let c = px.add_prob(cat);
    let yes = px.add_poss(c, 0.3);
    let m2 = px.add_elem(yes, "movie");
    px.add_text_elem(m2, "title", "Jaws 2");
    px.add_poss(c, 0.7);

    let plan = QueryPlan::parse("//movie/title")
        .unwrap()
        .with_min_probability(1.0);
    let answers = plan.collect(&px).unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers.items[0].value, "Jaws");
    assert_eq!(answers.items[0].probability, 1.0);
}

/// The pushdown must never drop an answer whose *total* probability
/// meets the threshold, even when every individual contribution to it
/// sits below the threshold.
#[test]
fn pruning_never_drops_split_mass_answers() {
    // "Jaws" appears in two mutually exclusive branches (0.4 and 0.3):
    // each occurrence alone is below a 0.5 threshold, but the
    // amalgamated probability 0.7 meets it.
    let mut px = PxDoc::new();
    let w = px.add_poss(px.root(), 1.0);
    let cat = px.add_elem(w, "catalog");
    let c = px.add_prob(cat);
    for (weight, title) in [(0.4, "Jaws"), (0.3, "Jaws"), (0.3, "Heat")] {
        let poss = px.add_poss(c, weight);
        let m = px.add_elem(poss, "movie");
        px.add_text_elem(m, "title", title);
    }

    let plan = QueryPlan::parse("//movie/title")
        .unwrap()
        .with_min_probability(0.5);
    let mut stream = plan.execute(&px).unwrap();
    let answers: Vec<_> = stream.by_ref().collect();
    assert_eq!(answers.len(), 1, "{answers:?}");
    assert_eq!(answers[0].value.as_str(), "Jaws");
    assert!((answers[0].probability - 0.7).abs() < 1e-12);
    // "Heat" (0.3) is excluded by its probability bound alone.
    assert_eq!(stream.pruned_by_bound(), 1);

    // Cross-check against the naive possible-worlds semantics.
    let naive = eval_px_naive(&px, &parse_query("//movie/title").unwrap(), 1000).unwrap();
    assert!((naive.probability_of("Jaws") - 0.7).abs() < 1e-12);
}

/// Threshold 0 keeps everything `eval_px` keeps (the explicit edge of
/// the pushdown contract), and the same holds through the `Engine` API.
#[test]
fn threshold_zero_through_the_engine_equals_unthresholded() {
    let engine = Engine::new();
    let db = engine
        .insert("db", query_db())
        .expect("store-less insert cannot fail");
    for q in QUERIES {
        let plain = engine.query(&db, q, None).unwrap();
        let at_zero = engine.query(&db, q, Some(0.0)).unwrap();
        assert_eq!(plain.items, at_zero.items, "query {q}");
    }
    // And a mid-range threshold equals the post-filtered full answer.
    let full = engine.query(&db, QUERIES[2], None).unwrap();
    let at = engine.query(&db, QUERIES[2], Some(0.5)).unwrap();
    let expected: Vec<_> = full.items.iter().filter(|a| a.probability >= 0.5).collect();
    assert_eq!(at.items.len(), expected.len());
    for (got, want) in at.items.iter().zip(expected) {
        assert_eq!(got.value, want.value);
        assert_eq!(got.probability.to_bits(), want.probability.to_bits());
    }
}

/// The lazy stream computes probabilities on demand: taking the first
/// answer of a large result set must not compute the rest. (Observable
/// through the memo/prune counters staying put until consumption.)
#[test]
fn stream_is_lazy_and_reports_pruning() {
    let db = query_db();
    let plan = QueryPlan::parse("//movie/title")
        .unwrap()
        .with_min_probability(0.5);
    let mut stream = plan.execute(&db).unwrap();
    assert_eq!(stream.pruned_by_bound(), 0, "nothing consumed yet");
    let first = stream.next().expect("the db has certain titles");
    assert!(first.probability >= 0.5);
    let consumed_after_one = stream.pruned_by_bound() + stream.filtered_exact();
    let rest: Vec<_> = stream.by_ref().collect();
    assert!(!rest.is_empty());
    assert!(
        stream.pruned_by_bound() + stream.filtered_exact() >= consumed_after_one,
        "counters only grow as the stream is consumed"
    );
    // On this workload the threshold actually prunes something.
    assert!(
        stream.pruned_by_bound() + stream.filtered_exact() > 0,
        "the §VI db has sub-threshold title variants"
    );
}
