//! Query semantics across the whole pipeline: integrate real scenarios,
//! then check that the exact symbolic evaluator, the naive possible-worlds
//! evaluator, and the paper's reported answer shapes all agree.

use imprecise::datagen::scenarios;
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use imprecise::pxml::PxDoc;
use imprecise::quality::evaluate;
use imprecise::query::{eval_px, eval_px_naive, parse_query};

fn query_db() -> PxDoc {
    let scenario = scenarios::query_db();
    let oracle = movie_oracle(MovieOracleConfig {
        genre_rule: true,
        title_rule: true,
        year_rule: false,
        graded_prior: true,
        ..MovieOracleConfig::default()
    });
    let options = IntegrationOptions {
        source_weights: (0.8, 0.2),
        ..IntegrationOptions::default()
    };
    integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &oracle,
        Some(&scenario.schema),
        &options,
    )
    .expect("integration succeeds")
    .doc
}

#[test]
fn horror_query_shape() {
    let db = query_db();
    let q = parse_query("//movie[.//genre=\"Horror\"]/title").expect("parses");
    let answers = eval_px(&db, &q).expect("evaluates");
    // Exactly the two horror movies, both nearly certain, equal ranked.
    assert_eq!(answers.len(), 2);
    assert!(answers.probability_of("Jaws") > 0.9);
    assert!(answers.probability_of("Jaws 2") > 0.9);
    assert!(
        (answers.probability_of("Jaws") - answers.probability_of("Jaws 2")).abs() < 0.05,
        "equal rank like the paper's 97%/97%"
    );
    let quality = evaluate(&answers, &["Jaws", "Jaws 2"]);
    assert_eq!(quality.precision, 1.0);
    assert!(quality.recall > 0.9);
}

#[test]
fn john_query_shape() {
    let db = query_db();
    let q = parse_query("//movie[some $d in .//director satisfies contains($d,\"John\")]/title")
        .expect("parses");
    let answers = eval_px(&db, &q).expect("evaluates");
    let dh = answers.probability_of("Die Hard: With a Vengeance");
    let mi2 = answers.probability_of("Mission: Impossible II");
    let mi = answers.probability_of("Mission: Impossible");
    assert!((dh - 1.0).abs() < 1e-9, "Die Hard is certain (paper: 100%)");
    assert!(
        mi2 > 0.5 && mi2 < 1.0,
        "true sequel high (paper: 96%), got {mi2}"
    );
    assert!(
        mi > 0.0 && mi < 0.5,
        "typo match low (paper: 21%), got {mi}"
    );
    assert!(dh > mi2 && mi2 > mi, "ranking order matches the paper");
}

#[test]
fn exact_matches_naive_on_the_query_database() {
    let db = query_db();
    for text in [
        "//movie/title",
        "//movie[.//genre=\"Horror\"]/title",
        "//movie[some $d in .//director satisfies contains($d,\"John\")]/title",
        "//movie[year=\"1975\"]/title",
        "//movie[not(genre=\"Action\")]/title",
        "//director",
    ] {
        let q = parse_query(text).expect("parses");
        let exact = eval_px(&db, &q).expect("evaluates");
        let naive = eval_px_naive(&db, &q, 1_000_000).expect("bounded worlds");
        assert_eq!(exact.len(), naive.len(), "query {text}");
        for item in &naive.items {
            let p = exact.probability_of(&item.value);
            assert!(
                (p - item.probability).abs() < 1e-9,
                "query {text}, value {}: exact {p} vs naive {}",
                item.value,
                item.probability
            );
        }
    }
}

#[test]
fn query_on_certain_integration_gives_certain_answers() {
    // Typical conditions + feedbackless querying: the vast majority of
    // content is certain, and certain content must rank at exactly 1.
    let scenario = scenarios::typical();
    let oracle = movie_oracle(MovieOracleConfig {
        graded_prior: false,
        ..MovieOracleConfig::default()
    });
    let db = integrate_xml(
        &scenario.mpeg7,
        &scenario.imdb,
        &oracle,
        Some(&scenario.schema),
        &IntegrationOptions::default(),
    )
    .expect("integration succeeds")
    .doc;
    let q = parse_query("//movie[year=\"1995\"]/title").expect("parses");
    let answers = eval_px(&db, &q).expect("evaluates");
    // All six MPEG-7 movies are from 1995 and certainly present.
    assert!(answers.len() >= 6);
    assert!((answers.probability_of("Heat") - 1.0).abs() < 1e-9);
    assert!((answers.probability_of("Fargo") - 1.0).abs() < 1e-9);
}

#[test]
fn rankings_are_probability_sorted() {
    let db = query_db();
    let q = parse_query("//movie/title").expect("parses");
    let answers = eval_px(&db, &q).expect("evaluates");
    for pair in answers.items.windows(2) {
        assert!(pair[0].probability >= pair[1].probability - 1e-12);
    }
    // And all probabilities are valid.
    for item in &answers.items {
        assert!(item.probability > 0.0 && item.probability <= 1.0 + 1e-12);
    }
}
