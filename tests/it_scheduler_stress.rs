//! Seeded-scheduler stress harness for the engine's determinism claims
//! (PR 7): permuted interleavings of refine steps, snapshot readers,
//! query evaluation, and stats probes must all converge to the same
//! bit-identical document — the fingerprint of the one-shot exhaustive
//! integration. Two layers:
//!
//! * a *deterministic* scheduler drives one engine per seed through an
//!   LCG-chosen operation sequence (the interleavings a concurrent run
//!   could serialize into), asserting invariants between steps;
//! * a *racing* harness lets several refiner threads and reader threads
//!   loose on one engine and asserts the same convergence — whatever
//!   order the OS scheduler picked.
//!
//! Run with `--features strict-invariants` to additionally shadow-check
//! every publish these schedules produce.

use imprecise::integrate::{IntegrationOptions, RefineOptions};
use imprecise::oracle::presets::addressbook_oracle;
use imprecise::xml::parse;
use imprecise::{DocHandle, Engine};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A minimal deterministic PRNG (Numerical Recipes LCG) so schedules
/// are reproducible from their seed without any RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Two three-John address books: one all-undecided 3×3 matching
/// component with 34 matchings — dozens of distinct refinement
/// schedules under small budgets.
fn engine_with_sources(budget: usize) -> (Engine, DocHandle, DocHandle) {
    let book = |tels: &[&str]| {
        let persons: String = tels
            .iter()
            .map(|t| format!("<person><nm>John</nm><tel>{t}</tel></person>"))
            .collect();
        format!("<addressbook>{persons}</addressbook>")
    };
    let engine = Engine::builder()
        .oracle(addressbook_oracle())
        .schema_text(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .expect("schema parses")
        .options(IntegrationOptions {
            max_matchings_per_component: budget,
            ..IntegrationOptions::default()
        })
        .build();
    let a = engine
        .load_xml("a", &book(&["1111", "2222", "3333"]))
        .expect("a loads");
    let b = engine
        .load_xml("b", &book(&["4444", "5555", "6666"]))
        .expect("b loads");
    (engine, a, b)
}

/// The one-shot exhaustive fingerprint every schedule must converge to.
fn exhaustive_fingerprint() -> u64 {
    let (engine, a, b) = engine_with_sources(usize::MAX);
    let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
    assert!(stats.is_exact(), "unbudgeted run is exact");
    engine.snapshot(&db).expect("db exists").doc().fingerprint()
}

#[test]
fn seeded_schedules_converge_to_the_exhaustive_fingerprint() {
    let expected = exhaustive_fingerprint();
    let query_text = "//person/tel";
    for seed in 0..12u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) + 1);
        let (engine, a, b) = engine_with_sources(2);
        let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
        assert!(!stats.is_exact(), "budget of 2 truncates");
        let query = engine.prepare(query_text).expect("query parses");
        // Interleave refinement installments with reader operations in
        // a seed-determined order until refinement is exhausted.
        let mut steps = 0usize;
        loop {
            match rng.next() % 4 {
                0 | 1 => {
                    let step = engine
                        .refine(
                            &db,
                            &RefineOptions {
                                extra_matchings: 1 + (rng.next() % 3) as usize,
                                ..RefineOptions::default()
                            },
                        )
                        .expect("refine succeeds");
                    steps += 1;
                    if step.remaining == 0 && step.refined.is_empty() {
                        break;
                    }
                }
                2 => {
                    let snapshot = engine.snapshot(&db).expect("db exists");
                    query.run(&snapshot).expect("query runs");
                }
                _ => {
                    engine.stats(&db).expect("db exists");
                }
            }
            engine
                .check_invariants(&db)
                .unwrap_or_else(|e| panic!("seed {seed}: invariants broken mid-schedule: {e}"));
            assert!(steps < 1000, "seed {seed}: schedule failed to converge");
        }
        let got = engine.snapshot(&db).expect("db exists").doc().fingerprint();
        assert_eq!(
            got, expected,
            "seed {seed}: schedule of {steps} refinement installments diverged"
        );
    }
}

#[test]
fn racing_refiners_and_readers_converge_to_the_exhaustive_fingerprint() {
    const REFINERS: usize = 3;
    const READERS: usize = 2;

    let expected = exhaustive_fingerprint();
    let (engine, a, b) = engine_with_sources(2);
    let (db, _) = engine.integrate(&a, &b, "db").expect("integrates");
    let query = engine.prepare("//person/tel").expect("query parses");
    let exhausted = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..REFINERS {
            let engine = engine.clone();
            let db = db.clone();
            let exhausted = &exhausted;
            scope.spawn(move || loop {
                let step = engine
                    .refine(
                        &db,
                        &RefineOptions {
                            extra_matchings: 2,
                            ..RefineOptions::default()
                        },
                    )
                    .expect("refine succeeds");
                if step.remaining == 0 && step.refined.is_empty() {
                    exhausted.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            });
        }
        for _ in 0..READERS {
            let engine = engine.clone();
            let db = db.clone();
            let query = query.clone();
            let exhausted = &exhausted;
            scope.spawn(move || {
                while exhausted.load(Ordering::Relaxed) < REFINERS {
                    let snapshot = engine.snapshot(&db).expect("db exists");
                    query.run(&snapshot).expect("query runs");
                }
            });
        }
    });

    engine.check_invariants(&db).expect("invariants hold");
    let got = engine.snapshot(&db).expect("db exists").doc().fingerprint();
    assert_eq!(got, expected, "racing refiners diverged from one-shot");
    // The document parses back: the converged state is a real document,
    // not merely a matching fingerprint.
    let exported = engine.export(&db).expect("exports");
    parse(&exported).expect("exported document re-parses");
}
