//! Seeded-scheduler stress harness for the engine's determinism claims
//! (PR 7): permuted interleavings of refine steps, snapshot readers,
//! query evaluation, and stats probes must all converge to the same
//! bit-identical document — the fingerprint of the one-shot exhaustive
//! integration. Two layers:
//!
//! * a *deterministic* scheduler drives one engine per seed through an
//!   LCG-chosen operation sequence (the interleavings a concurrent run
//!   could serialize into), asserting invariants between steps;
//! * a *racing* harness lets several refiner threads and reader threads
//!   loose on one engine and asserts the same convergence — whatever
//!   order the OS scheduler picked.
//!
//! Run with `--features strict-invariants` to additionally shadow-check
//! every publish these schedules produce.

use imprecise::integrate::{IntegrationOptions, Parallelism, RefineOptions};
use imprecise::oracle::presets::addressbook_oracle;
use imprecise::xml::parse;
use imprecise::{DocHandle, Engine};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A minimal deterministic PRNG (Numerical Recipes LCG) so schedules
/// are reproducible from their seed without any RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Two n-John address books: one all-undecided n×n matching component —
/// dozens of distinct refinement schedules under small budgets. `n = 3`
/// gives 34 matchings; `n = 4` gives 209 *and* crosses the
/// intra-component parallel threshold (16 live pairs), so refine steps
/// actually engage the in-search worker pool when threads are granted.
fn engine_with_sized_sources(budget: usize, n: usize) -> (Engine, DocHandle, DocHandle) {
    let book = |prefix: usize| {
        let persons: String = (0..n)
            .map(|i| format!("<person><nm>John</nm><tel>{prefix}{i:03}</tel></person>"))
            .collect();
        format!("<addressbook>{persons}</addressbook>")
    };
    let engine = Engine::builder()
        .oracle(addressbook_oracle())
        .schema_text(
            "<!ELEMENT addressbook (person*)><!ELEMENT person (nm, tel?)>\
             <!ELEMENT nm (#PCDATA)><!ELEMENT tel (#PCDATA)>",
        )
        .expect("schema parses")
        .options(IntegrationOptions {
            max_matchings_per_component: budget,
            ..IntegrationOptions::default()
        })
        .build();
    let a = engine.load_xml("a", &book(1)).expect("a loads");
    let b = engine.load_xml("b", &book(2)).expect("b loads");
    (engine, a, b)
}

fn engine_with_sources(budget: usize) -> (Engine, DocHandle, DocHandle) {
    engine_with_sized_sources(budget, 3)
}

/// The one-shot exhaustive fingerprint every schedule must converge to.
fn sized_exhaustive_fingerprint(n: usize) -> u64 {
    let (engine, a, b) = engine_with_sized_sources(usize::MAX, n);
    let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
    assert!(stats.is_exact(), "unbudgeted run is exact");
    engine.snapshot(&db).expect("db exists").doc().fingerprint()
}

fn exhaustive_fingerprint() -> u64 {
    sized_exhaustive_fingerprint(3)
}

#[test]
fn seeded_schedules_converge_to_the_exhaustive_fingerprint() {
    let expected = exhaustive_fingerprint();
    let query_text = "//person/tel";
    for seed in 0..12u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) + 1);
        let (engine, a, b) = engine_with_sources(2);
        let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
        assert!(!stats.is_exact(), "budget of 2 truncates");
        let query = engine.prepare(query_text).expect("query parses");
        // Interleave refinement installments with reader operations in
        // a seed-determined order until refinement is exhausted.
        let mut steps = 0usize;
        loop {
            match rng.next() % 4 {
                0 | 1 => {
                    let step = engine
                        .refine(
                            &db,
                            &RefineOptions {
                                extra_matchings: 1 + (rng.next() % 3) as usize,
                                ..RefineOptions::default()
                            },
                        )
                        .expect("refine succeeds");
                    steps += 1;
                    if step.remaining == 0 && step.refined.is_empty() {
                        break;
                    }
                }
                2 => {
                    let snapshot = engine.snapshot(&db).expect("db exists");
                    query.run(&snapshot).expect("query runs");
                }
                _ => {
                    engine.stats(&db).expect("db exists");
                }
            }
            engine
                .check_invariants(&db)
                .unwrap_or_else(|e| panic!("seed {seed}: invariants broken mid-schedule: {e}"));
            assert!(steps < 1000, "seed {seed}: schedule failed to converge");
        }
        let got = engine.snapshot(&db).expect("db exists").doc().fingerprint();
        assert_eq!(
            got, expected,
            "seed {seed}: schedule of {steps} refinement installments diverged"
        );
    }
}

#[test]
fn racing_refiners_and_readers_converge_to_the_exhaustive_fingerprint() {
    const REFINERS: usize = 3;
    const READERS: usize = 2;

    let expected = exhaustive_fingerprint();
    let (engine, a, b) = engine_with_sources(2);
    let (db, _) = engine.integrate(&a, &b, "db").expect("integrates");
    let query = engine.prepare("//person/tel").expect("query parses");
    let exhausted = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..REFINERS {
            let engine = engine.clone();
            let db = db.clone();
            let exhausted = &exhausted;
            scope.spawn(move || loop {
                let step = engine
                    .refine(
                        &db,
                        &RefineOptions {
                            extra_matchings: 2,
                            ..RefineOptions::default()
                        },
                    )
                    .expect("refine succeeds");
                if step.remaining == 0 && step.refined.is_empty() {
                    exhausted.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            });
        }
        for _ in 0..READERS {
            let engine = engine.clone();
            let db = db.clone();
            let query = query.clone();
            let exhausted = &exhausted;
            scope.spawn(move || {
                while exhausted.load(Ordering::Relaxed) < REFINERS {
                    let snapshot = engine.snapshot(&db).expect("db exists");
                    query.run(&snapshot).expect("query runs");
                }
            });
        }
    });

    engine.check_invariants(&db).expect("invariants hold");
    let got = engine.snapshot(&db).expect("db exists").doc().fingerprint();
    assert_eq!(got, expected, "racing refiners diverged from one-shot");
    // The document parses back: the converged state is a real document,
    // not merely a matching fingerprint.
    let exported = engine.export(&db).expect("exports");
    parse(&exported).expect("exported document re-parses");
}

/// Engine-level half of the serial ≡ parallel contract: the *same*
/// staged refinement schedule, re-run with 2/4/7 intra-component
/// workers, publishes a bit-identical document after every installment
/// — not just at convergence.
#[test]
fn intra_component_thread_counts_are_bitwise_identical() {
    let run = |threads: usize| {
        // 4×4 book: one 16-live-pair component, past the parallel gate.
        let (engine, a, b) = engine_with_sized_sources(3, 4);
        let (db, stats) = engine.integrate(&a, &b, "db").expect("integrates");
        assert!(!stats.is_exact(), "budget of 3 truncates the 4×4 book");
        let options = RefineOptions {
            extra_matchings: 7,
            threads: Some(Parallelism::new(threads)),
            ..RefineOptions::default()
        };
        let mut fingerprints = Vec::new();
        loop {
            let step = engine.refine(&db, &options).expect("refine succeeds");
            fingerprints.push(engine.snapshot(&db).expect("db exists").doc().fingerprint());
            if step.remaining == 0 && step.refined.is_empty() {
                break;
            }
            assert!(fingerprints.len() < 1000, "failed to converge");
        }
        fingerprints
    };
    let serial = run(1);
    assert_eq!(
        *serial.last().expect("at least one step"),
        sized_exhaustive_fingerprint(4),
        "staged refinement converges to the one-shot document"
    );
    for threads in [2, 4, 7] {
        assert_eq!(
            run(threads),
            serial,
            "{threads} workers diverged from the serial installment sequence"
        );
    }
}

/// Racing refiners that each bring their *own* intra-component worker
/// pool: optimistic engine rounds interleave parallel searches over the
/// same component, and the result must still converge to the exhaustive
/// fingerprint.
#[test]
fn racing_intra_component_workers_converge_to_the_exhaustive_fingerprint() {
    let expected = sized_exhaustive_fingerprint(4);
    let (engine, a, b) = engine_with_sized_sources(3, 4);
    let (db, _) = engine.integrate(&a, &b, "db").expect("integrates");
    std::thread::scope(|scope| {
        for threads in [2, 4, 7] {
            let engine = engine.clone();
            let db = db.clone();
            scope.spawn(move || loop {
                let step = engine
                    .refine(
                        &db,
                        &RefineOptions {
                            extra_matchings: 5,
                            threads: Some(Parallelism::new(threads)),
                            ..RefineOptions::default()
                        },
                    )
                    .expect("refine succeeds");
                if step.remaining == 0 && step.refined.is_empty() {
                    return;
                }
            });
        }
    });
    engine.check_invariants(&db).expect("invariants hold");
    let got = engine.snapshot(&db).expect("db exists").doc().fingerprint();
    assert_eq!(got, expected, "racing parallel searches diverged");
}
