//! Tests of the deprecated [`Session`] shim: the pre-`Engine` surface
//! keeps *behaving* identically for one release — same operations,
//! results and error messages; see the `session` module docs for the
//! three source-level signature caveats. (The Engine-native equivalents
//! live in `it_engine_concurrency.rs` and the `engine` module's unit
//! tests.)

#![allow(deprecated)]

use imprecise::datagen::movies::movie_schema_text;
use imprecise::datagen::scenarios;
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use imprecise::xml::to_string;
use imprecise::{Session, SessionError};

fn movie_session() -> Session {
    let scenario = scenarios::query_db();
    let mut s = Session::new();
    s.set_oracle(movie_oracle(MovieOracleConfig {
        year_rule: false,
        graded_prior: true,
        ..MovieOracleConfig::default()
    }));
    s.load_schema(movie_schema_text()).expect("schema parses");
    s.load_xml("mpeg7", &to_string(&scenario.mpeg7))
        .expect("loads");
    s.load_xml("imdb", &to_string(&scenario.imdb))
        .expect("loads");
    s
}

#[test]
fn movie_session_full_cycle() {
    let mut s = movie_session();
    let stats = s.integrate("mpeg7", "imdb", "db").expect("integrates");
    assert!(stats.judged_possible > 0);
    let doc_stats = s.stats("db").expect("exists");
    assert!(doc_stats.worlds > 1.0);
    assert!(!doc_stats.certain);
    let answers = s
        .query("db", "//movie[.//genre=\"Horror\"]/title")
        .expect("query runs");
    assert_eq!(answers.len(), 2);
    // Feedback through the façade.
    let report = s
        .feedback("db", "//movie/title", "Jaws", true)
        .expect("feedback applies");
    assert!(report.worlds_after <= report.worlds_before);
}

#[test]
fn incremental_three_source_integration() {
    let mut s = movie_session();
    s.integrate("mpeg7", "imdb", "db")
        .expect("first integration");
    // A third source arrives: integrate it into the probabilistic result.
    s.load_xml(
        "late",
        "<catalog><movie><title>Alien</title><year>1979</year>\
         <genre>Horror</genre><director>Ridley Scott</director></movie></catalog>",
    )
    .expect("loads");
    s.integrate("db", "late", "db2")
        .expect("incremental integration");
    let answers = s
        .query("db2", "//movie[.//genre=\"Horror\"]/title")
        .expect("query runs");
    assert!((answers.probability_of("Alien") - 1.0).abs() < 1e-9);
    assert!(answers.probability_of("Jaws") > 0.9);
}

#[test]
fn export_reimport_preserves_distribution() {
    let mut s = movie_session();
    s.integrate("mpeg7", "imdb", "db").expect("integrates");
    let worlds_before = s.stats("db").expect("exists").worlds;
    let text = s.export("db").expect("exports");
    assert!(text.contains("px:prob"));
    let mut s2 = Session::new();
    s2.load_xml("db", &text).expect("reimports");
    assert_eq!(s2.stats("db").expect("exists").worlds, worlds_before);
}

#[test]
fn errors_are_descriptive() {
    let mut s = Session::new();
    let err = s.query("ghost", "//a").unwrap_err();
    assert!(err.to_string().contains("ghost"));
    s.load_xml("x", "<a/>").expect("loads");
    let err = s.query("x", "not a query").unwrap_err();
    assert!(matches!(err, SessionError::QueryParse(_)));
    let err = s.load_xml("bad", "<a><b></a>").unwrap_err();
    assert!(matches!(err, SessionError::Xml(_)));
    let err = s.load_schema("<!GIBBERISH>").unwrap_err();
    assert!(matches!(err, SessionError::Xml(_)));
}

#[test]
fn stats_report_both_representations() {
    let mut s = movie_session();
    s.integrate("mpeg7", "imdb", "db").expect("integrates");
    let stats = s.stats("db").expect("exists");
    // Factored representation never exceeds the unfactored equivalent.
    assert!(stats.breakdown.total() as f64 <= stats.unfactored_nodes);
    assert!(stats.expected_world_size > 0.0);
}
