//! Recall-safe blocking is invisible: integrating with
//! `BlockingMode::RecallSafe` must produce the bit-identical document
//! (same fingerprint, same serialized bytes) as integrating with
//! blocking off, on every workload — named scenarios and random ones.
//! The only permitted difference is *work*: fewer oracle calls, with
//! the pruned pairs accounted in `IntegrationStats::pairs_pruned`.

use imprecise::datagen::addressbook::{addressbook_schema, addressbook_to_xml, fig2_sources};
use imprecise::datagen::scenarios::{confusable, large_source, sequels_t1, MovieScenario};
use imprecise::integrate::{integrate_xml, BlockingMode, IntegrationOptions, IntegrationOutcome};
use imprecise::oracle::presets::{addressbook_oracle, movie_oracle, MovieOracleConfig};
use imprecise::oracle::Oracle;
use imprecise::pxml::px_fingerprint;
use imprecise::xml::XmlDoc;
use proptest::prelude::*;

fn opts(blocking: BlockingMode) -> IntegrationOptions {
    IntegrationOptions {
        blocking,
        ..IntegrationOptions::default()
    }
}

fn run(
    a: &XmlDoc,
    b: &XmlDoc,
    oracle: &Oracle,
    schema: Option<&imprecise::xml::Schema>,
    blocking: BlockingMode,
) -> IntegrationOutcome {
    integrate_xml(a, b, oracle, schema, &opts(blocking)).expect("integration succeeds")
}

/// Assert blocked ≡ unblocked bitwise and return (unblocked, blocked).
fn assert_recall_safe(
    a: &XmlDoc,
    b: &XmlDoc,
    oracle: &Oracle,
    schema: Option<&imprecise::xml::Schema>,
    label: &str,
) -> (IntegrationOutcome, IntegrationOutcome) {
    let off = run(a, b, oracle, schema, BlockingMode::Off);
    let safe = run(a, b, oracle, schema, BlockingMode::RecallSafe);
    assert_eq!(
        px_fingerprint(&off.doc, off.doc.root()),
        px_fingerprint(&safe.doc, safe.doc.root()),
        "{label}: recall-safe blocking changed the integrated document"
    );
    // Match/possible tallies are judgments that actually reached the
    // candidate set — pruning must not remove any of those.
    assert_eq!(off.stats.judged_match, safe.stats.judged_match, "{label}");
    assert_eq!(
        off.stats.judged_possible, safe.stats.judged_possible,
        "{label}"
    );
    assert_eq!(
        safe.stats.pairs_judged + safe.stats.pairs_pruned,
        off.stats.pairs_judged,
        "{label}: every skipped judgment must be accounted as pruned"
    );
    assert_eq!(safe.stats.pairs_windowed_out, 0, "{label}");
    (off, safe)
}

fn movie_scenario_oracle() -> Oracle {
    movie_oracle(MovieOracleConfig::default())
}

fn check_movie_scenario(s: &MovieScenario) {
    assert_recall_safe(
        &s.mpeg7,
        &s.imdb,
        &movie_scenario_oracle(),
        Some(&s.schema),
        &s.info.name,
    );
}

#[test]
fn movies_sequels_fingerprints_match() {
    check_movie_scenario(&sequels_t1());
}

#[test]
fn movies_confusable_fingerprints_match() {
    check_movie_scenario(&confusable(6));
}

#[test]
fn addressbook_fingerprints_match() {
    let (a, b) = fig2_sources();
    assert_recall_safe(
        &a,
        &b,
        &addressbook_oracle(),
        Some(&addressbook_schema()),
        "fig2-addressbook",
    );
}

#[test]
fn large_source_fingerprints_match_and_pruning_bites() {
    let s = large_source(240);
    let (off, safe) = assert_recall_safe(
        &s.mpeg7,
        &s.imdb,
        &movie_scenario_oracle(),
        Some(&s.schema),
        &s.info.name,
    );
    // The whole point: on the year-bucketed large workload the plan
    // prunes the vast majority of the cross product.
    assert!(
        safe.stats.pairs_pruned * 2 > off.stats.pairs_judged,
        "pruned only {} of {} pairs",
        safe.stats.pairs_pruned,
        off.stats.pairs_judged
    );
}

#[test]
fn heuristic_windowing_reports_dropped_pairs() {
    let s = large_source(240);
    let oracle = movie_scenario_oracle();
    let windowed = run(
        &s.mpeg7,
        &s.imdb,
        &oracle,
        Some(&s.schema),
        BlockingMode::Heuristic { window: 8 },
    );
    let off = run(
        &s.mpeg7,
        &s.imdb,
        &oracle,
        Some(&s.schema),
        BlockingMode::Off,
    );
    // Heuristic mode is honest about its recall risk: the unexamined
    // pairs are reported, and it does strictly less judging work.
    assert!(windowed.stats.pairs_windowed_out > 0);
    assert!(windowed.stats.pairs_judged < off.stats.pairs_judged);
    windowed.doc.validate().expect("valid px document");
}

// Random persons exercise the addressbook plan (similarity filter only —
// no equality join), random movies the movie plan (year join + title
// bound + genre text filter).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_addressbooks_are_blocking_invariant(
        names_a in proptest::collection::vec((0usize..8, 0usize..26), 0..5),
        names_b in proptest::collection::vec((0usize..8, 0usize..26), 0..5),
    ) {
        use imprecise::datagen::addressbook::Person;
        const FIRST: [&str; 8] = [
            "John", "Jon", "Mary", "Maria", "Alice", "Bob", "Carol", "Dave",
        ];
        let mk = |specs: &[(usize, usize)], base: u64| -> Vec<Person> {
            specs
                .iter()
                .enumerate()
                .map(|(i, &(f, l))| Person {
                    rwo: base + i as u64,
                    name: format!("{} {}", FIRST[f], (b'A' + l as u8) as char),
                    tel: Some(format!("{}", 1000 + 7 * (f + 13 * l))),
                })
                .collect()
        };
        let a = addressbook_to_xml(&mk(&names_a, 0));
        let b = addressbook_to_xml(&mk(&names_b, 100));
        assert_recall_safe(
            &a,
            &b,
            &addressbook_oracle(),
            Some(&addressbook_schema()),
            "random-addressbook",
        );
    }

    #[test]
    fn random_movie_catalogs_are_blocking_invariant(
        specs_a in proptest::collection::vec((0usize..6, 0u32..6, 0usize..3), 0..5),
        specs_b in proptest::collection::vec((0usize..6, 0u32..6, 0usize..3), 0..5),
    ) {
        use imprecise::datagen::movies::{catalog_to_xml, movie_schema, Movie, MovieBuilder, SourceStyle};
        const TITLES: [&str; 6] = ["Jaws", "Jaws 2", "Heat", "Fargo", "Die Hard", "Casino"];
        const GENRES: [&str; 3] = ["Horror", "Action", "Crime"];
        let mk = |specs: &[(usize, u32, usize)], base: u64| -> Vec<Movie> {
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, y, g))| {
                    MovieBuilder::new(base + i as u64, TITLES[t], 1970 + y)
                        .genre(GENRES[g])
                        .build()
                })
                .collect()
        };
        let a = catalog_to_xml(&mk(&specs_a, 0), SourceStyle::Mpeg7);
        let b = catalog_to_xml(&mk(&specs_b, 100), SourceStyle::Imdb);
        let schema = movie_schema();
        assert_recall_safe(
            &a,
            &b,
            &movie_scenario_oracle(),
            Some(&schema),
            "random-movies",
        );
    }
}
