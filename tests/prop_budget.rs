//! Property tests of the budgeted matching pipeline (PR 4's tentpole):
//!
//! * budgeted enumeration with an unlimited budget is **byte-identical**
//!   to the exhaustive recursion — at the component level (weight bits)
//!   and end to end (document fingerprints, strict vs budgeted mode);
//! * under any budget, the per-component mass accounting closes:
//!   `retained_mass + discarded_mass == 1 ± 1e-9`, kept weights are a
//!   proper distribution, and the integrated document still describes a
//!   probability distribution over worlds.

use imprecise::datagen::movies::{catalog_to_xml, movie_schema, Movie, MovieBuilder, SourceStyle};
use imprecise::integrate::matching::{
    enumerate_budgeted, enumerate_matchings, Candidate, Component, MatchBudget,
};
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use proptest::prelude::*;

/// A random bipartite candidate component: cell values 0 mean "no
/// edge", anything else maps to a probability strictly inside (0, 1).
fn component_from(n: usize, m: usize, cells: &[u8]) -> Component {
    let mut possible = Vec::new();
    for a in 0..n {
        for b in 0..m {
            let v = cells[a * m + b];
            if v != 0 {
                possible.push(Candidate {
                    a,
                    b,
                    p: 0.05 + 0.9 * f64::from(v) / 256.0,
                });
            }
        }
    }
    Component {
        a_nodes: (0..n).collect(),
        b_nodes: (0..m).collect(),
        forced: Vec::new(),
        possible,
    }
}

const TITLE_POOL: [&str; 5] = ["Jaws", "Jaws 2", "Heat", "Die Hard", "Casino"];

fn movie_from(title: u8, year: u8, rwo: u64) -> Movie {
    MovieBuilder::new(
        rwo,
        TITLE_POOL[title as usize % TITLE_POOL.len()],
        1970 + u32::from(year % 4),
    )
    .genre("Drama")
    .build()
}

fn confusion_oracle() -> imprecise::oracle::Oracle {
    // Title and year rules off: most pairs stay undecided, so even small
    // catalogs produce components with many matchings.
    movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: false,
        year_rule: false,
        graded_prior: true,
        ..MovieOracleConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn unlimited_budget_is_bitwise_exhaustive(
        n in 1usize..4,
        m in 1usize..4,
        cells in proptest::collection::vec(0u8..=255, 9),
    ) {
        let component = component_from(n, m, &cells);
        let exhaustive = enumerate_matchings(&component, usize::MAX).expect("no cap");
        let budgeted = enumerate_budgeted(&component, &MatchBudget::UNLIMITED);
        prop_assert!(!budgeted.truncated);
        prop_assert_eq!(budgeted.retained_mass, 1.0);
        prop_assert_eq!(budgeted.discarded_mass, 0.0);
        prop_assert_eq!(budgeted.matchings.len(), exhaustive.len());
        for (b, e) in budgeted.matchings.iter().zip(&exhaustive) {
            prop_assert_eq!(&b.pairs, &e.pairs);
            prop_assert_eq!(b.weight.to_bits(), e.weight.to_bits());
        }
    }

    #[test]
    fn budget_mass_accounting_closes(
        n in 1usize..4,
        m in 1usize..4,
        cells in proptest::collection::vec(0u8..=255, 9),
        max_matchings in 1usize..8,
        min_mass_pct in proptest::option::of(1u8..100),
    ) {
        let component = component_from(n, m, &cells);
        let budget = MatchBudget {
            max_matchings,
            min_retained_mass: min_mass_pct.map(|p| f64::from(p) / 100.0),
        };
        let result = enumerate_budgeted(&component, &budget);
        // Mass accounting closes per component.
        prop_assert!(
            (result.retained_mass + result.discarded_mass - 1.0).abs() < 1e-9,
            "retained {} + discarded {} != 1",
            result.retained_mass,
            result.discarded_mass
        );
        // The kept matchings are a proper distribution in descending order.
        prop_assert!(!result.matchings.is_empty());
        prop_assert!(result.matchings.len() <= max_matchings);
        let total: f64 = result.matchings.iter().map(|x| x.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "kept weights sum to {total}");
        prop_assert!(result
            .matchings
            .windows(2)
            .all(|w| w[0].weight >= w[1].weight - 1e-15));
        // Truncation and discarded mass agree.
        prop_assert_eq!(result.truncated, result.discarded_mass > 0.0);
        // The early-stop guarantee: when a mass floor was requested and
        // the matching cap did not interfere, the floor was reached.
        if let Some(t) = budget.min_retained_mass {
            if result.matchings.len() < max_matchings {
                prop_assert!(result.retained_mass >= t - 1e-9);
            }
        }
    }

    #[test]
    fn budgeted_integration_with_unlimited_budget_matches_strict(
        a_specs in proptest::collection::vec((0u8..5, 0u8..4), 0..4),
        b_specs in proptest::collection::vec((0u8..5, 0u8..4), 0..4),
    ) {
        let a: Vec<Movie> = a_specs.iter().enumerate()
            .map(|(i, &(t, y))| movie_from(t, y, i as u64)).collect();
        let b: Vec<Movie> = b_specs.iter().enumerate()
            .map(|(i, &(t, y))| movie_from(t, y, 100 + i as u64)).collect();
        let doc_a = catalog_to_xml(&a, SourceStyle::Mpeg7);
        let doc_b = catalog_to_xml(&b, SourceStyle::Imdb);
        let schema = movie_schema();
        let oracle = confusion_oracle();
        let strict = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema), &IntegrationOptions {
            strict_matchings: true,
            ..IntegrationOptions::default()
        }).expect("within default cap");
        let budgeted = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions::default()).expect("never errors");
        // Byte-identical distributions: the budgeted pipeline at rest is
        // the exhaustive one.
        prop_assert_eq!(strict.doc.fingerprint(), budgeted.doc.fingerprint());
        prop_assert!(budgeted.stats.is_exact());
        prop_assert_eq!(&strict.stats, &budgeted.stats);
        // And the parallel path changes nothing either.
        let parallel = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema), &IntegrationOptions {
            parallelism: imprecise::integrate::Parallelism::AUTO,
            ..IntegrationOptions::default()
        }).expect("never errors");
        prop_assert_eq!(budgeted.doc.fingerprint(), parallel.doc.fingerprint());
    }

    #[test]
    fn truncated_integration_stays_a_distribution(
        a_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        b_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        budget in 2usize..6,
    ) {
        let a: Vec<Movie> = a_specs.iter().enumerate()
            .map(|(i, &(t, y))| movie_from(t, y, i as u64)).collect();
        let b: Vec<Movie> = b_specs.iter().enumerate()
            .map(|(i, &(t, y))| movie_from(t, y, 100 + i as u64)).collect();
        let doc_a = catalog_to_xml(&a, SourceStyle::Mpeg7);
        let doc_b = catalog_to_xml(&b, SourceStyle::Imdb);
        let schema = movie_schema();
        let result = integrate_xml(&doc_a, &doc_b, &confusion_oracle(), Some(&schema),
            &IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            }).expect("budgeted integration never errors");
        result.doc.validate().expect("valid px invariants");
        // Kept worlds renormalise to a proper distribution.
        let worlds = result.doc.worlds(1_000_000).expect("bounded");
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "world mass {total}");
        // Truncation records carry their component's location and a
        // meaningful mass.
        for t in &result.stats.truncated_components {
            prop_assert!(t.path.starts_with('/'), "path {:?}", t.path);
            prop_assert!(t.kept <= budget);
            prop_assert!(t.discarded_mass > 0.0 && t.discarded_mass < 1.0);
        }
        prop_assert_eq!(
            result.stats.is_exact(),
            result.stats.truncated_components.is_empty()
        );
    }
}
