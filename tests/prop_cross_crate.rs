//! Cross-crate property tests: random two-source movie workloads are
//! integrated and the end-to-end invariants checked — validity, world
//! preservation, query-semantics agreement, serialization round-trips.

use imprecise::datagen::movies::{catalog_to_xml, movie_schema, Movie, MovieBuilder, SourceStyle};
use imprecise::integrate::{integrate_xml, IntegrationOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use imprecise::pxml::{parse_annotated, px_fingerprint, to_annotated_xml};
use imprecise::query::{eval_px, eval_px_naive, parse_query};
use proptest::prelude::*;

const TITLE_POOL: [&str; 6] = ["Jaws", "Jaws 2", "Heat", "Fargo", "Die Hard", "Casino"];
const GENRE_POOL: [&str; 3] = ["Horror", "Action", "Crime"];
const DIRECTOR_POOL: [&str; 3] = ["John Woo", "Steven Spielberg", "Michael Mann"];

#[derive(Debug, Clone)]
struct Spec {
    title: u8,
    year: u8,
    genre: u8,
    director: Option<u8>,
}

fn movie_from(spec: &Spec, rwo: u64) -> Movie {
    let mut b = MovieBuilder::new(
        rwo,
        TITLE_POOL[spec.title as usize % TITLE_POOL.len()],
        1970 + u32::from(spec.year % 8),
    )
    .genre(GENRE_POOL[spec.genre as usize % GENRE_POOL.len()]);
    if let Some(d) = spec.director {
        b = b.director(DIRECTOR_POOL[d as usize % DIRECTOR_POOL.len()]);
    }
    b.build()
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        0u8..TITLE_POOL.len() as u8,
        0u8..8,
        0u8..GENRE_POOL.len() as u8,
        proptest::option::of(0u8..DIRECTOR_POOL.len() as u8),
    )
        .prop_map(|(title, year, genre, director)| Spec {
            title,
            year,
            genre,
            director,
        })
}

fn oracle() -> imprecise::oracle::Oracle {
    movie_oracle(MovieOracleConfig {
        graded_prior: false,
        ..MovieOracleConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn integration_invariants_hold(
        a_specs in proptest::collection::vec(spec_strategy(), 0..4),
        b_specs in proptest::collection::vec(spec_strategy(), 0..4),
    ) {
        let a: Vec<Movie> = a_specs.iter().enumerate().map(|(i, s)| movie_from(s, i as u64)).collect();
        let b: Vec<Movie> = b_specs.iter().enumerate().map(|(i, s)| movie_from(s, 100 + i as u64)).collect();
        let doc_a = catalog_to_xml(&a, SourceStyle::Mpeg7);
        let doc_b = catalog_to_xml(&b, SourceStyle::Imdb);
        let schema = movie_schema();
        let result = integrate_xml(&doc_a, &doc_b, &oracle(), Some(&schema), &IntegrationOptions::default());
        let result = result.expect("integration succeeds on well-formed inputs");

        // 1. The result is a valid probabilistic document.
        result.doc.validate().expect("valid px invariants");

        // 2. World count agrees with enumeration (bounded workload).
        let worlds = result.doc.worlds(1_000_000).expect("bounded");
        prop_assert_eq!(result.doc.world_count(), worlds.len() as u128);
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "world probabilities sum to {total}");

        // 3. Every world conforms to the DTD.
        for w in &worlds {
            schema.validate(&w.doc).expect("world is DTD-valid");
        }

        // 4. Annotated serialization round-trips exactly.
        let text = imprecise::xml::to_string(&to_annotated_xml(&result.doc));
        let reparsed = parse_annotated(&imprecise::xml::parse(&text).expect("parses"))
            .expect("decodes");
        prop_assert_eq!(
            px_fingerprint(&result.doc, result.doc.root()),
            px_fingerprint(&reparsed, reparsed.root())
        );
    }

    #[test]
    fn query_semantics_agree_after_integration(
        a_specs in proptest::collection::vec(spec_strategy(), 1..3),
        b_specs in proptest::collection::vec(spec_strategy(), 1..3),
        query_idx in 0usize..4,
    ) {
        let queries = [
            "//movie/title",
            "//movie[genre=\"Horror\"]/title",
            "//movie[some $d in .//director satisfies contains($d,\"John\")]/title",
            "//movie[year=\"1975\"]/title",
        ];
        let a: Vec<Movie> = a_specs.iter().enumerate().map(|(i, s)| movie_from(s, i as u64)).collect();
        let b: Vec<Movie> = b_specs.iter().enumerate().map(|(i, s)| movie_from(s, 100 + i as u64)).collect();
        let doc_a = catalog_to_xml(&a, SourceStyle::Mpeg7);
        let doc_b = catalog_to_xml(&b, SourceStyle::Imdb);
        let schema = movie_schema();
        let result = integrate_xml(&doc_a, &doc_b, &oracle(), Some(&schema), &IntegrationOptions::default())
            .expect("integration succeeds");
        let q = parse_query(queries[query_idx]).expect("parses");
        let exact = eval_px(&result.doc, &q).expect("evaluates");
        let naive = eval_px_naive(&result.doc, &q, 1_000_000).expect("bounded");
        prop_assert_eq!(exact.len(), naive.len());
        for item in &naive.items {
            let p = exact.probability_of(&item.value);
            prop_assert!(
                (p - item.probability).abs() < 1e-9,
                "value {}: exact {} vs naive {}", item.value, p, item.probability
            );
        }
    }

    #[test]
    fn feedback_equals_world_filtering(
        a_specs in proptest::collection::vec(spec_strategy(), 1..3),
        b_specs in proptest::collection::vec(spec_strategy(), 1..3),
        pick in 0usize..8,
        correct in proptest::bool::ANY,
    ) {
        let a: Vec<Movie> = a_specs.iter().enumerate().map(|(i, s)| movie_from(s, i as u64)).collect();
        let b: Vec<Movie> = b_specs.iter().enumerate().map(|(i, s)| movie_from(s, 100 + i as u64)).collect();
        let doc_a = catalog_to_xml(&a, SourceStyle::Mpeg7);
        let doc_b = catalog_to_xml(&b, SourceStyle::Imdb);
        let schema = movie_schema();
        let result = integrate_xml(&doc_a, &doc_b, &oracle(), Some(&schema), &IntegrationOptions::default())
            .expect("integration succeeds");
        let q = parse_query("//movie/title").expect("parses");
        let answers = eval_px(&result.doc, &q).expect("evaluates");
        prop_assume!(!answers.is_empty());
        let value = answers.items[pick % answers.len()].value.clone();

        // Reference: filter the enumerated worlds by hand.
        let worlds = result.doc.worlds(100_000).expect("bounded");
        let surviving: Vec<(u64, f64)> = worlds
            .iter()
            .filter(|w| {
                let has = imprecise::query::xml_eval::eval_xml_values(&w.doc, &q)
                    .contains(&value);
                has == correct
            })
            .map(|w| (imprecise::xml::subtree_fingerprint(&w.doc, w.doc.root()), w.prob))
            .collect();
        let total: f64 = surviving.iter().map(|(_, p)| p).sum();

        match imprecise::feedback::apply_feedback(&result.doc, &q, &value, correct, 100_000) {
            Err(imprecise::feedback::FeedbackError::Contradiction) => {
                prop_assert!(total <= 1e-9, "feedback said contradiction but mass {total} survives");
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
            Ok((conditioned, report)) => {
                conditioned.validate().expect("conditioned doc is valid");
                prop_assert!((report.worlds_before - worlds.len() as f64).abs() < 1e-6);
                // The conditioned distribution equals the filtered one.
                let mut expected: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
                for (fp, p) in &surviving {
                    *expected.entry(*fp).or_insert(0.0) += p / total;
                }
                let conditioned_dist = conditioned.world_distribution(100_000).expect("bounded");
                prop_assert_eq!(conditioned_dist.len(), expected.len());
                for w in &conditioned_dist {
                    let fp = imprecise::xml::subtree_fingerprint(&w.doc, w.doc.root());
                    let e = expected.get(&fp).copied().unwrap_or(f64::NAN);
                    prop_assert!((w.prob - e).abs() < 1e-9, "world prob {} vs expected {e}", w.prob);
                }
            }
        }
    }

    #[test]
    fn pruning_keeps_a_valid_subset_of_worlds(
        a_specs in proptest::collection::vec(spec_strategy(), 0..3),
        b_specs in proptest::collection::vec(spec_strategy(), 0..3),
        eps_tenths in 0u8..10,
    ) {
        let a: Vec<Movie> = a_specs.iter().enumerate().map(|(i, s)| movie_from(s, i as u64)).collect();
        let b: Vec<Movie> = b_specs.iter().enumerate().map(|(i, s)| movie_from(s, 100 + i as u64)).collect();
        let doc_a = catalog_to_xml(&a, SourceStyle::Mpeg7);
        let doc_b = catalog_to_xml(&b, SourceStyle::Imdb);
        let schema = movie_schema();
        let result = integrate_xml(&doc_a, &doc_b, &oracle(), Some(&schema), &IntegrationOptions::default())
            .expect("integration succeeds");
        let before: std::collections::HashMap<u64, f64> = result
            .doc
            .world_distribution(100_000)
            .expect("bounded")
            .into_iter()
            .map(|w| (imprecise::xml::subtree_fingerprint(&w.doc, w.doc.root()), w.prob))
            .collect();
        let mut pruned = result.doc.clone();
        let stats = pruned.prune_below(f64::from(eps_tenths) / 10.0);
        pruned.validate().expect("pruned doc is valid");
        prop_assert!(stats.worlds_after <= stats.worlds_before);
        // Every surviving world existed before, and pruning + renormalising
        // never lowers a surviving world's probability.
        for w in pruned.world_distribution(100_000).expect("bounded") {
            let fp = imprecise::xml::subtree_fingerprint(&w.doc, w.doc.root());
            let old = before.get(&fp);
            prop_assert!(old.is_some(), "pruning invented a world");
            prop_assert!(w.prob >= old.copied().unwrap_or(2.0) - 1e-9);
        }
    }

    #[test]
    fn lazy_world_iteration_matches_enumeration(
        a_specs in proptest::collection::vec(spec_strategy(), 0..3),
        b_specs in proptest::collection::vec(spec_strategy(), 0..3),
    ) {
        let a: Vec<Movie> = a_specs.iter().enumerate().map(|(i, s)| movie_from(s, i as u64)).collect();
        let b: Vec<Movie> = b_specs.iter().enumerate().map(|(i, s)| movie_from(s, 100 + i as u64)).collect();
        let doc_a = catalog_to_xml(&a, SourceStyle::Mpeg7);
        let doc_b = catalog_to_xml(&b, SourceStyle::Imdb);
        let result = integrate_xml(&doc_a, &doc_b, &oracle(), Some(&movie_schema()), &IntegrationOptions::default())
            .expect("integration succeeds");
        let eager = result.doc.worlds(100_000).expect("bounded");
        let lazy: Vec<imprecise::pxml::World> = result.doc.worlds_iter().collect();
        prop_assert_eq!(eager.len(), lazy.len());
        for (e, l) in eager.iter().zip(&lazy) {
            prop_assert!(imprecise::xml::deep_equal(&e.doc, &l.doc));
            prop_assert!((e.prob - l.prob).abs() < 1e-12);
        }
    }

    #[test]
    fn source_order_preserves_world_count(
        a_specs in proptest::collection::vec(spec_strategy(), 0..3),
        b_specs in proptest::collection::vec(spec_strategy(), 0..3),
    ) {
        let a: Vec<Movie> = a_specs.iter().enumerate().map(|(i, s)| movie_from(s, i as u64)).collect();
        let b: Vec<Movie> = b_specs.iter().enumerate().map(|(i, s)| movie_from(s, 100 + i as u64)).collect();
        let doc_a = catalog_to_xml(&a, SourceStyle::Mpeg7);
        let doc_b = catalog_to_xml(&b, SourceStyle::Imdb);
        let schema = movie_schema();
        let ab = integrate_xml(&doc_a, &doc_b, &oracle(), Some(&schema), &IntegrationOptions::default())
            .expect("a⊕b succeeds");
        let ba = integrate_xml(&doc_b, &doc_a, &oracle(), Some(&schema), &IntegrationOptions::default())
            .expect("b⊕a succeeds");
        prop_assert_eq!(ab.doc.world_count(), ba.doc.world_count());
        prop_assert_eq!(ab.stats.judged_possible, ba.stats.judged_possible);
    }
}
