//! Property tests of resumable integration (PR 5's tentpole):
//!
//! * a budget-truncated integration refined to an unlimited budget is
//!   **byte-identical** (document fingerprint) to the one-shot
//!   exhaustive integration — the frontier really does persist the whole
//!   search state;
//! * per-component mass accounting closes (`retained + discarded ==
//!   1 ± 1e-9`) after *every* staged refinement step, not only at the
//!   ends;
//! * the worst-case discarded mass shrinks monotonically as refinement
//!   steps are applied, and staged refinement converges to the same
//!   exhaustive fingerprint as a single unlimited refinement;
//! * arena compaction is invisible to every observer — fingerprint,
//!   world enumeration, query answers — and interleaving compaction
//!   with refinement steps does not disturb the bitwise convergence
//!   (PR 6's incremental emitter + arena hygiene).

use imprecise::datagen::movies::{catalog_to_xml, movie_schema, Movie, MovieBuilder, SourceStyle};
use imprecise::integrate::{integrate_px, integrate_xml, IntegrationOptions, RefineOptions};
use imprecise::oracle::presets::{movie_oracle, MovieOracleConfig};
use imprecise::query::{eval_px, parse_query};
use imprecise::xml::to_string;
use imprecise::Engine;
use proptest::prelude::*;

/// Unique temp-file path for durable-store properties, removed on drop.
struct ScratchStore(std::path::PathBuf);

impl ScratchStore {
    fn new() -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "imprecise-prop-refine-{}-{n}.seg",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        ScratchStore(path)
    }
}

impl Drop for ScratchStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A store-backed engine over the confusion workload; rebuilt per open
/// because [`imprecise::oracle::Oracle`] is not `Clone`.
fn store_engine(budget: usize, path: &std::path::Path) -> Engine {
    Engine::builder()
        .oracle(confusion_oracle())
        .schema(movie_schema())
        .options(IntegrationOptions {
            max_matchings_per_component: budget,
            ..IntegrationOptions::default()
        })
        .with_store(path)
        .open()
        .expect("store opens")
}

const TITLE_POOL: [&str; 5] = ["Jaws", "Jaws 2", "Heat", "Die Hard", "Casino"];

fn movie_from(title: u8, year: u8, rwo: u64) -> Movie {
    MovieBuilder::new(
        rwo,
        TITLE_POOL[title as usize % TITLE_POOL.len()],
        1970 + u32::from(year % 4),
    )
    .genre("Drama")
    .build()
}

fn confusion_oracle() -> imprecise::oracle::Oracle {
    // Title and year rules off: most pairs stay undecided, so even small
    // catalogs produce components with many matchings.
    movie_oracle(MovieOracleConfig {
        genre_rule: false,
        title_rule: false,
        year_rule: false,
        graded_prior: true,
        ..MovieOracleConfig::default()
    })
}

fn catalogs(
    a_specs: &[(u8, u8)],
    b_specs: &[(u8, u8)],
) -> (imprecise::xml::XmlDoc, imprecise::xml::XmlDoc) {
    let a: Vec<Movie> = a_specs
        .iter()
        .enumerate()
        .map(|(i, &(t, y))| movie_from(t, y, i as u64))
        .collect();
    let b: Vec<Movie> = b_specs
        .iter()
        .enumerate()
        .map(|(i, &(t, y))| movie_from(t, y, 100 + i as u64))
        .collect();
    (
        catalog_to_xml(&a, SourceStyle::Mpeg7),
        catalog_to_xml(&b, SourceStyle::Imdb),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn refine_to_unlimited_is_bitwise_exhaustive(
        a_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        b_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        budget in 2usize..6,
    ) {
        let (doc_a, doc_b) = catalogs(&a_specs, &b_specs);
        let schema = movie_schema();
        let oracle = confusion_oracle();
        let exact = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions::default()).expect("exhaustive integrates");
        prop_assert!(!exact.is_refinable());
        let mut budgeted = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            }).expect("budgeted never errors");
        let step = budgeted
            .refine(&oracle, Some(&schema), &RefineOptions::to_exhaustive())
            .expect("refine succeeds");
        prop_assert_eq!(step.remaining, 0);
        prop_assert!(!budgeted.is_refinable());
        prop_assert!(budgeted.stats.is_exact());
        prop_assert_eq!(
            exact.doc.fingerprint(),
            budgeted.doc.fingerprint(),
            "refined-to-unlimited differs from the one-shot exhaustive run"
        );
    }

    #[test]
    fn staged_refinement_closes_mass_and_shrinks_monotonically(
        a_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        b_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        budget in 2usize..6,
        extra in 1usize..8,
        top in 1usize..3,
    ) {
        let (doc_a, doc_b) = catalogs(&a_specs, &b_specs);
        let schema = movie_schema();
        let oracle = confusion_oracle();
        let exact = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions::default()).expect("exhaustive integrates");
        let mut outcome = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            }).expect("budgeted never errors");
        let options = RefineOptions {
            extra_matchings: extra,
            min_retained_mass: None,
            max_components: top,
            threads: None,
        };
        let mut last_mass = outcome.max_discarded_mass();
        let mut guard = 0usize;
        while outcome.is_refinable() {
            let step = outcome
                .refine(&oracle, Some(&schema), &options)
                .expect("refine succeeds");
            // Mass closure per component, after every step.
            for f in outcome.frontiers() {
                let cf = f.snapshot_frontier();
                prop_assert!(
                    (cf.retained_mass + cf.discarded_mass - 1.0).abs() < 1e-9,
                    "{}: retained {} + discarded {} != 1",
                    f.path(), cf.retained_mass, cf.discarded_mass
                );
            }
            // The refined components' own accounting closes too.
            for r in &step.refined {
                prop_assert!(r.discarded_after >= 0.0 && r.discarded_after <= 1.0);
                prop_assert!(r.kept_after >= r.kept_before);
            }
            // Monotone convergence of the headline figure.
            prop_assert!(
                step.max_discarded_mass <= last_mass + 1e-9,
                "max discarded mass grew: {last_mass} -> {}",
                step.max_discarded_mass
            );
            last_mass = step.max_discarded_mass;
            // The intermediate document stays a valid distribution.
            outcome.doc.validate().expect("valid px invariants");
            // Stats track the live frontiers.
            prop_assert_eq!(outcome.stats.components_truncated(), step.remaining);
            guard += 1;
            prop_assert!(guard < 10_000, "refinement failed to converge");
        }
        prop_assert_eq!(
            exact.doc.fingerprint(),
            outcome.doc.fingerprint(),
            "staged refinement must converge to the exhaustive result"
        );
    }

    #[test]
    fn refining_probabilistic_inputs_converges_too(
        a_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..4),
        b_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..4),
        budget in 3usize..6,
    ) {
        // Incremental integration: the (exact) result of one integration
        // — already probabilistic — integrated against a third source
        // under a budget, then refined. Truncated components here live
        // under local-world cross products, the arena sites the frontier
        // machinery must handle beyond plain element parents.
        let (doc_a, doc_b) = catalogs(&a_specs, &b_specs);
        let schema = movie_schema();
        let oracle = confusion_oracle();
        let first = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions::default()).expect("first step integrates");
        let third: Vec<Movie> = (0..2)
            .map(|i| movie_from(i as u8, i as u8, 500 + i as u64))
            .collect();
        let doc_c = imprecise::pxml::from_xml(&catalog_to_xml(&third, SourceStyle::Mpeg7));
        let exact = integrate_px(&first.doc, &doc_c, &oracle, Some(&schema),
            &IntegrationOptions::default()).expect("exhaustive second step");
        let mut budgeted = integrate_px(&first.doc, &doc_c, &oracle, Some(&schema),
            &IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            }).expect("budgeted second step");
        budgeted
            .refine(&oracle, Some(&schema), &RefineOptions::to_exhaustive())
            .expect("refine succeeds");
        prop_assert!(!budgeted.is_refinable());
        prop_assert_eq!(exact.doc.fingerprint(), budgeted.doc.fingerprint());
    }

    #[test]
    fn store_roundtrip_mid_refinement_resumes_bitwise(
        a_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        b_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        budget in 2usize..6,
        extra in 1usize..8,
    ) {
        // The durable store dropped mid-staged-refinement must recover a
        // frontier that resumes exactly where the dead process stopped:
        // reopen + refine-to-exhaustive lands on the one-shot exhaustive
        // fingerprint, bit for bit, for arbitrary interruption points.
        let (doc_a, doc_b) = catalogs(&a_specs, &b_specs);
        let schema = movie_schema();
        let oracle = confusion_oracle();
        let exact = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions::default()).expect("exhaustive integrates");
        let scratch = ScratchStore::new();
        let options = RefineOptions {
            extra_matchings: extra,
            min_retained_mass: None,
            max_components: usize::MAX,
            threads: None,
        };
        // "Process one": integrate under budget, apply one partial
        // installment, die with the frontier still open (usually).
        let interrupted_fp = {
            let engine = store_engine(budget, &scratch.0);
            let a = engine.load_xml("a", &to_string(&doc_a)).expect("loads");
            let b = engine.load_xml("b", &to_string(&doc_b)).expect("loads");
            let (db, _) = engine.integrate(&a, &b, "db").expect("integrates");
            if engine.refine_state(&db).expect("exists").is_some() {
                engine.refine(&db, &options).expect("refines");
            }
            engine.snapshot(&db).expect("exists").doc().fingerprint()
        };
        // "Process two": recovery is bitwise-faithful to the interrupted
        // document, and the recovered frontier finishes the job.
        let engine = store_engine(budget, &scratch.0);
        let db = engine.handle("db").expect("recovered");
        prop_assert_eq!(
            engine.snapshot(&db).expect("exists").doc().fingerprint(),
            interrupted_fp,
            "recovery must reproduce the interrupted document exactly"
        );
        if let Some(info) = engine.refine_state(&db).expect("exists") {
            prop_assert!(info.recovered_at.is_some(),
                "a recovered frontier carries provenance");
        }
        let step = engine
            .refine(&db, &RefineOptions::to_exhaustive())
            .expect("refines");
        prop_assert_eq!(step.remaining, 0);
        prop_assert_eq!(
            engine.snapshot(&db).expect("exists").doc().fingerprint(),
            exact.doc.fingerprint(),
            "store round-trip mid-refinement must still converge exactly"
        );
    }

    #[test]
    fn compaction_is_invisible_to_every_observer(
        a_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        b_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        budget in 2usize..6,
    ) {
        // Refinement-to-exhaustive runs the deferred simplification
        // pass, which strands the collapsed nodes in the arena: the
        // compaction target. Compacting must change nothing any reader
        // can see — fingerprint, world distribution, query answers.
        let (doc_a, doc_b) = catalogs(&a_specs, &b_specs);
        let schema = movie_schema();
        let oracle = confusion_oracle();
        let mut outcome = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            }).expect("budgeted never errors");
        outcome
            .refine(&oracle, Some(&schema), &RefineOptions::to_exhaustive())
            .expect("refine succeeds");
        let fingerprint = outcome.doc.fingerprint();
        let worlds = outcome.doc.worlds(1_000_000).expect("bounded");
        let query = parse_query("//movie/title").expect("parses");
        let answers = eval_px(&outcome.doc, &query).expect("evaluates");
        let before = outcome.doc.arena_stats();
        let map = outcome.compact_arena();
        prop_assert_eq!(map.dropped(), before.detached(),
            "compaction reclaims exactly the detached slots");
        let after = outcome.doc.arena_stats();
        prop_assert_eq!(after.live, after.total, "no garbage survives");
        prop_assert_eq!(after.live, before.live, "no live node is lost");
        outcome.doc.validate().expect("valid px invariants");
        prop_assert_eq!(fingerprint, outcome.doc.fingerprint(),
            "compaction must not change the fingerprint");
        let worlds_after = outcome.doc.worlds(1_000_000).expect("bounded");
        prop_assert_eq!(worlds.len(), worlds_after.len());
        for (w, v) in worlds.iter().zip(&worlds_after) {
            prop_assert_eq!(w.prob.to_bits(), v.prob.to_bits());
            prop_assert_eq!(to_string(&w.doc), to_string(&v.doc));
        }
        let answers_after = eval_px(&outcome.doc, &query).expect("evaluates");
        prop_assert_eq!(answers.items.len(), answers_after.items.len());
        for (x, y) in answers.items.iter().zip(&answers_after.items) {
            prop_assert_eq!(&x.value, &y.value);
            prop_assert_eq!(x.probability.to_bits(), y.probability.to_bits());
        }
    }

    #[test]
    fn compaction_between_refine_steps_keeps_bitwise_convergence(
        a_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        b_specs in proptest::collection::vec((0u8..5, 0u8..4), 2..5),
        budget in 2usize..6,
        extra in 1usize..8,
    ) {
        // Compacting mid-flight renumbers the arena under the open
        // frontiers' feet; the re-anchored frontiers must still drive
        // the staged refinement to the exact one-shot fingerprint.
        let (doc_a, doc_b) = catalogs(&a_specs, &b_specs);
        let schema = movie_schema();
        let oracle = confusion_oracle();
        let exact = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions::default()).expect("exhaustive integrates");
        let mut outcome = integrate_xml(&doc_a, &doc_b, &oracle, Some(&schema),
            &IntegrationOptions {
                max_matchings_per_component: budget,
                ..IntegrationOptions::default()
            }).expect("budgeted never errors");
        let options = RefineOptions {
            extra_matchings: extra,
            min_retained_mass: None,
            max_components: usize::MAX,
            threads: None,
        };
        let mut guard = 0usize;
        while outcome.is_refinable() {
            let step = outcome
                .refine(&oracle, Some(&schema), &options)
                .expect("refine succeeds");
            // Incremental emission appends without detaching: while
            // frontiers stay open the arena holds no garbage, so the
            // interleaved compaction is exercised as both the identity
            // remap and (after the final simplify) a real reclaim.
            prop_assert!(step.arena_live <= step.arena_total);
            outcome.compact_arena();
            outcome.doc.validate().expect("valid px invariants");
            guard += 1;
            prop_assert!(guard < 10_000, "refinement failed to converge");
        }
        prop_assert_eq!(
            exact.doc.fingerprint(),
            outcome.doc.fingerprint(),
            "compaction between steps must not disturb convergence"
        );
    }
}
